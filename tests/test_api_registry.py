"""Component registries: error paths, lazy resolution, manifest lockstep."""

import pytest

from repro.api.manifest import choices, manifest
from repro.api.registry import REGISTRIES, Registry, RegistryError


class TestRegistryBasics:
    def test_decorator_registration_and_get(self):
        reg = Registry("widget")

        @reg.register("spinner")
        def make_spinner():
            return "spin"

        assert reg.get("spinner") is make_spinner
        assert "spinner" in reg
        assert reg.names() == ("spinner",)

    def test_duplicate_registration_raises(self):
        reg = Registry("widget")
        reg.register("x", object())
        with pytest.raises(RegistryError, match="already registered"):
            reg.register("x", object())

    def test_duplicate_lazy_registration_raises(self):
        reg = Registry("widget")
        reg.register_lazy("x", "json:loads")
        with pytest.raises(RegistryError, match="already registered"):
            reg.register_lazy("x", "json:dumps")

    def test_override_flag_replaces(self):
        reg = Registry("widget")
        first, second = object(), object()
        reg.register("x", first)
        reg.register("x", second, override=True)
        assert reg.get("x") is second

    def test_unknown_name_lists_available(self):
        reg = Registry("widget")
        reg.register("left", object())
        reg.register("right", object())
        with pytest.raises(RegistryError, match=r"left.*right"):
            reg.get("middle")

    def test_registry_error_is_key_error(self):
        reg = Registry("widget")
        with pytest.raises(KeyError):
            reg.get("nope")

    def test_lazy_entry_resolves_on_get_only(self):
        reg = Registry("widget")
        reg.register_lazy("loads", "json:loads")
        import json

        assert reg.get("loads") is json.loads

    def test_defining_module_may_claim_its_lazy_entry(self):
        # The rule that lets repro.serve.policies decorate the names
        # that registry.py pre-declares as lazy pointers into it.
        reg = Registry("widget")
        reg.register_lazy("loads", "json:loads")

        def impostor():
            pass

        impostor.__module__ = "json"
        reg.register("loads", impostor)  # claims the lazy entry
        assert reg.get("loads") is impostor

    def test_foreign_module_cannot_claim_lazy_entry(self):
        reg = Registry("widget")
        reg.register_lazy("loads", "json:loads")

        def outsider():
            pass

        outsider.__module__ = "somewhere.else"
        with pytest.raises(RegistryError, match="already registered"):
            reg.register("loads", outsider)

    def test_bad_lazy_spec_rejected(self):
        reg = Registry("widget")
        with pytest.raises(ValueError, match="module:attr"):
            reg.register_lazy("x", "no-colon-here")


class TestBuiltinsResolve:
    """Every lazily declared built-in must import and resolve."""

    @pytest.mark.parametrize("kind", sorted(REGISTRIES))
    def test_all_entries_resolve(self, kind):
        registry = REGISTRIES[kind]
        for name in registry.names():
            assert registry.get(name) is not None

    def test_unknown_manifest_kind_rejected(self):
        with pytest.raises(KeyError, match="unknown registry"):
            choices("gadgets")


class TestManifestConsistency:
    """The import-free manifest stays in lockstep with what the defining
    modules actually implement — the test that replaced the old
    hand-copied CLI choice tuples.  Since the compat tuples
    (POLICY_NAMES etc.) are themselves registry snapshots now, these
    tests compare against *independent* evidence: the classes/functions
    defined in each module, and the legacy dicts where they survive."""

    def test_every_policy_class_is_registered(self):
        import inspect

        from repro.api.registry import POLICIES
        from repro.serve import policies as module

        registered = {POLICIES.get(name) for name in POLICIES.names()}
        defined = {
            obj for obj in vars(module).values()
            if inspect.isclass(obj)
            and issubclass(obj, module.PrecisionController)
            and obj is not module.PrecisionController
        }
        assert defined == registered

    def test_every_router_class_is_registered(self):
        import inspect

        from repro.api.registry import ROUTERS
        from repro.serve import routing as module

        registered = {ROUTERS.get(name) for name in ROUTERS.names()}
        defined = {
            obj for obj in vars(module).values()
            if inspect.isclass(obj)
            and issubclass(obj, module.Router)
            and obj is not module.Router
        }
        assert defined == registered

    def test_every_scenario_function_is_registered(self):
        from repro.api.registry import SCENARIOS
        from repro.serve import simulator
        from repro.workload import scenarios as workload_scenarios

        registered = {SCENARIOS.get(name) for name in SCENARIOS.names()}
        defined = {
            obj
            for module in (simulator, workload_scenarios)
            for name, obj in vars(module).items()
            if name.endswith("_gaps") and not name.startswith("_")
            and callable(obj)
        }
        assert defined == registered

    def test_every_trace_transform_is_registered(self):
        from repro.api.registry import TRACE_TRANSFORMS
        from repro.workload import trace as module

        registered = {
            TRACE_TRANSFORMS.get(name) for name in TRACE_TRANSFORMS.names()
        }
        defined = {
            vars(module)[name]
            for name in ("time_scale", "splice", "tenant_mix",
                         "amplitude_modulate")
        }
        assert defined == registered

    def test_serve_scales_match_simulator(self):
        from repro.serve.simulator import SERVE_SCALES

        assert set(manifest()["serve_scales"]) == set(SERVE_SCALES)

    def test_scales_match_experiments_common(self):
        from repro.experiments.common import SCALES

        assert set(manifest()["scales"]) == set(SCALES)

    def test_every_experiment_module_is_registered(self):
        import pkgutil

        import repro.experiments

        modules = {
            m.name for m in pkgutil.iter_modules(repro.experiments.__path__)
            if m.name.startswith(("fig", "table"))
        }
        assert modules == set(manifest()["experiments"])

    def test_every_model_factory_is_registered(self):
        import inspect

        import repro.nn.models as zoo
        from repro.api.registry import MODELS

        registered = {MODELS.get(name) for name in MODELS.names()}
        defined = {
            obj for name in zoo.__all__
            if inspect.isfunction(obj := getattr(zoo, name))
        }
        assert defined == registered

    def test_checkpoint_builders_view_tracks_registry(self):
        from repro.serve.checkpoint import MODEL_BUILDERS

        assert set(manifest()["models"]) == set(MODEL_BUILDERS)

    def test_quantizer_entries_construct(self):
        from repro.quant.quantizers import Quantizer, make_quantizer

        for name in manifest()["quantizers"]:
            assert isinstance(make_quantizer(name), Quantizer)

    def test_strategy_entries_are_strategies(self):
        from repro.api.registry import STRATEGIES
        from repro.core.cdt import SwitchableTrainingStrategy, make_strategy

        for name in manifest()["strategies"]:
            assert issubclass(STRATEGIES.get(name), SwitchableTrainingStrategy)
            assert isinstance(make_strategy(name), SwitchableTrainingStrategy)


class TestCustomComponentsFlowThrough:
    """A component registered at runtime is reachable via the old
    factory entry points — the registries are the source of truth."""

    def test_custom_policy_reachable_via_make_policy(self):
        from repro.api.registry import POLICIES
        from repro.serve.policies import StaticPolicy, make_policy

        name = "test-static-clone"
        assert name not in POLICIES

        @POLICIES.register(name)
        class CloneStatic(StaticPolicy):
            pass

        try:
            assert isinstance(make_policy(name), CloneStatic)
        finally:
            POLICIES._entries.pop(name, None)

    def test_custom_scenario_reachable_via_arrival_gaps(self):
        import numpy as np

        from repro.api.registry import SCENARIOS
        from repro.serve.simulator import _arrival_gaps

        name = "test-metronome"
        assert name not in SCENARIOS

        @SCENARIOS.register(name)
        def metronome(n, capacity_rps, rng):
            return np.full(n, 1.0 / capacity_rps)

        try:
            gaps = _arrival_gaps(name, 5, 10.0, np.random.default_rng(0))
            np.testing.assert_allclose(gaps, 0.1)
        finally:
            SCENARIOS._entries.pop(name, None)

    def test_policy_names_is_live_view(self):
        """Regression: POLICY_NAMES used to be an import-time snapshot
        that silently missed later-registered policies."""
        from repro.api.registry import POLICIES
        from repro.serve.policies import POLICY_NAMES, StaticPolicy

        name = "test-late-policy"
        assert name not in POLICY_NAMES
        assert tuple(POLICY_NAMES) == POLICIES.names()

        @POLICIES.register(name)
        class Late(StaticPolicy):
            pass

        try:
            assert name in POLICY_NAMES
            assert name in list(POLICY_NAMES)
            assert POLICY_NAMES == POLICIES.names()
            assert POLICY_NAMES[-1] == name
        finally:
            POLICIES._entries.pop(name, None)
        assert name not in POLICY_NAMES

    def test_scenario_names_is_live_view(self):
        import numpy as np

        from repro.api.registry import SCENARIOS
        from repro.serve.simulator import SCENARIO_NAMES

        name = "test-late-scenario"
        assert name not in SCENARIO_NAMES

        @SCENARIOS.register(name)
        def late_gaps(n, capacity_rps, rng):
            return np.full(n, 1.0 / capacity_rps)

        try:
            assert name in SCENARIO_NAMES
            assert SCENARIO_NAMES == SCENARIOS.names()
        finally:
            SCENARIOS._entries.pop(name, None)
        assert name not in SCENARIO_NAMES

    def test_registry_names_view_equality_and_errors(self):
        from repro.api.registry import Registry, RegistryNames

        reg = Registry("widget")
        reg.register("a", object())
        view = RegistryNames(reg)
        assert view == ("a",) and view == ["a"] and len(view) == 1
        assert view != ("b",)
        assert view.index("a") == 0 and view.count("a") == 1
        with pytest.raises(TypeError, match="unhashable"):
            hash(view)

    def test_custom_scale_reachable_via_get_scale(self):
        import dataclasses

        from repro.api.registry import SCALES
        from repro.experiments.common import get_scale

        name = "test-nano"
        assert name not in SCALES
        nano = dataclasses.replace(get_scale("smoke"), name=name)
        SCALES.register(name, nano)
        try:
            assert get_scale(name) is nano
        finally:
            SCALES._entries.pop(name, None)
