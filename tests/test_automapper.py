"""Evolutionary AutoMapper: Alg. 1 behaviour and search quality."""

import numpy as np
import pytest

from repro import rng as rng_mod
from repro.core.automapper import (
    AutoMapper,
    AutoMapperConfig,
    random_search_layer,
)
from repro.hardware import (
    ConvWorkload,
    alexnet_workloads,
    evaluate_layer,
    eyeriss_like_asic,
    random_dataflow,
)
from repro.hardware.costmodel import make_valid

WL = ConvWorkload("t", 1, 64, 32, 14, 14, 3, 3)
DEV = eyeriss_like_asic()


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            AutoMapperConfig(metric="speed")
        with pytest.raises(ValueError):
            AutoMapperConfig(pool_size=1)


class TestLayerSearch:
    def test_returns_valid_dataflow(self):
        am = AutoMapper(DEV, AutoMapperConfig(generations=6))
        flow, cost = am.search_layer(WL)
        assert cost.valid
        assert flow.covers(WL)

    def test_beats_mean_random_sample(self):
        rng_mod.set_seed(0)
        am = AutoMapper(DEV, AutoMapperConfig(generations=15, metric="edp"))
        _, cost = am.search_layer(WL)
        rng = np.random.default_rng(0)
        randoms = []
        for _ in range(30):
            f = make_valid(WL, random_dataflow(WL, DEV, rng), DEV)
            c = evaluate_layer(WL, f, DEV)
            if c.valid:
                randoms.append(c.edp)
        assert cost.edp < np.mean(randoms)

    def test_beats_random_search_at_equal_budget(self):
        """The paper's motivation for evolution over random search.

        A per-seed comparison is noisy on small layers, so compare the
        medians of three independent searches at equal budgets.
        """
        evo, rnd = [], []
        for seed in range(3):
            rng_mod.set_seed(seed)
            cfg = AutoMapperConfig(pool_size=16, breed_batch=8,
                                   generations=30, metric="edp",
                                   seed_key=f"evo-t{seed}")
            am = AutoMapper(DEV, cfg)
            _, evo_cost = am.search_layer(WL)
            evo.append(evo_cost.edp)
            _, rnd_cost = random_search_layer(
                WL, DEV, am.evaluations, metric="edp",
                rng=np.random.default_rng(100 + seed),
            )
            rnd.append(rnd_cost.edp)
        assert np.median(evo) <= np.median(rnd) * 1.1

    def test_cache_dedupes_identical_shapes(self):
        am = AutoMapper(DEV, AutoMapperConfig(generations=4))
        am.search_layer(WL)
        evals_after_first = am.evaluations
        am.search_layer(WL)  # same shape: served from cache
        assert am.evaluations == evals_after_first

    def test_goal_stops_early(self):
        generous_goal = 1.0  # EDP in J*s — trivially met by any mapping
        am = AutoMapper(DEV, AutoMapperConfig(generations=1000,
                                              goal=generous_goal))
        am.search_layer(WL)
        # Pool built (24) + at most one breed batch before the goal check.
        assert am.evaluations <= 24 + 12

    def test_metric_energy_vs_edp_differ(self):
        rng_mod.set_seed(1)
        am_e = AutoMapper(DEV, AutoMapperConfig(generations=10,
                                                metric="energy",
                                                seed_key="m-e"))
        am_d = AutoMapper(DEV, AutoMapperConfig(generations=10,
                                                metric="latency",
                                                seed_key="m-d"))
        _, ce = am_e.search_layer(WL)
        _, cd = am_d.search_layer(WL)
        assert ce.energy_pj <= cd.energy_pj * 1.5


class TestNetworkSearch:
    def test_multicycle_network(self):
        am = AutoMapper(DEV, AutoMapperConfig(generations=4))
        wls = alexnet_workloads()[:3]
        res = am.search_network(wls, pipeline=False)
        assert res.network_cost.valid
        assert len(res.dataflows) == 3

    def test_pipeline_network(self):
        am = AutoMapper(DEV, AutoMapperConfig(generations=4))
        wls = alexnet_workloads()[:3]
        res = am.search_network(wls, pipeline=True)
        assert res.network_cost.valid
        assert res.pipeline

    def test_auto_pipeline_choice_returns_better(self):
        am = AutoMapper(DEV, AutoMapperConfig(generations=4, seed_key="auto"))
        wls = alexnet_workloads()[:3]
        both = am.search_network(wls, pipeline=None)
        multi = am.search_network(wls, pipeline=False)
        pipe = am.search_network(wls, pipeline=True)
        assert both.edp <= min(multi.edp, pipe.edp) + 1e-12

    def test_repeated_layers_searched_once(self):
        am = AutoMapper(DEV, AutoMapperConfig(generations=4))
        wls = [WL, WL, WL]
        am.search_network(wls, pipeline=False)
        # One unique shape -> one cache entry.
        assert len(am._layer_cache) == 1


class TestCostModelMemoAndWarmStart:
    def test_memoized_search_matches_plain(self):
        """Memoization must not change search results, only avoid work."""
        for memoize in (True, False):
            am = AutoMapper(DEV, AutoMapperConfig(generations=6,
                                                  seed_key="memo-eq",
                                                  memoize=memoize))
            flow, cost = am.search_layer(WL)
            if memoize:
                memo_edp, memo_flow = cost.edp, flow.cache_key()
            else:
                assert cost.edp == memo_edp
                assert flow.cache_key() == memo_flow

    def test_warm_start_seeds_across_bitwidths(self):
        am = AutoMapper(DEV, AutoMapperConfig(generations=4,
                                              seed_key="warm",
                                              warm_start=True))
        _, cost8 = am.search_layer(WL.with_bits(8))
        assert am._shape_best  # shape entry recorded for reuse
        _, cost4 = am.search_layer(WL.with_bits(4))
        assert cost8.valid and cost4.valid

    def test_warm_start_off_by_default(self):
        assert AutoMapperConfig().warm_start is False
        assert AutoMapperConfig().memoize is True
