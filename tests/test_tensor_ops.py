"""Unit tests for elementwise / reduction / shape ops and their gradients."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor import Tensor, check_gradients
from repro.tensor import ops


def t(arr, grad=True):
    return Tensor(np.asarray(arr, dtype=np.float64), requires_grad=grad)


class TestArithmetic:
    def test_add_values(self):
        out = t([1.0, 2.0]) + t([3.0, 4.0])
        assert np.allclose(out.data, [4.0, 6.0])

    def test_add_broadcast_gradcheck(self, rng):
        a = t(rng.normal(size=(3, 4)))
        b = t(rng.normal(size=(4,)))
        check_gradients(lambda a, b: a + b, [a, b])

    def test_sub_broadcast_gradcheck(self, rng):
        a = t(rng.normal(size=(2, 3)))
        b = t(rng.normal(size=(1, 3)))
        check_gradients(lambda a, b: a - b, [a, b])

    def test_mul_gradcheck(self, rng):
        a = t(rng.normal(size=(3, 2)))
        b = t(rng.normal(size=(3, 1)))
        check_gradients(lambda a, b: a * b, [a, b])

    def test_div_gradcheck(self, rng):
        a = t(rng.normal(size=(4,)))
        b = t(rng.uniform(0.5, 2.0, size=(4,)))
        check_gradients(lambda a, b: a / b, [a, b])

    def test_scalar_operand_keeps_dtype(self):
        x = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        assert ((x * 2.0) + 1.0).dtype == np.float32
        y = Tensor(np.ones(3, dtype=np.float64), requires_grad=True)
        assert ((y * 2.0) + 1.0).dtype == np.float64

    def test_radd_rmul(self):
        x = t([1.0, 2.0])
        assert np.allclose((3.0 + x).data, [4.0, 5.0])
        assert np.allclose((2.0 * x).data, [2.0, 4.0])

    def test_neg_pow(self, rng):
        a = t(rng.uniform(0.5, 2.0, size=(5,)))
        check_gradients(lambda a: -a, [a])
        check_gradients(lambda a: a ** 3.0, [a])

    def test_maximum_minimum_gradcheck(self, rng):
        a = t(rng.normal(size=(6,)))
        b = t(rng.normal(size=(6,)))
        check_gradients(lambda a, b: ops.maximum(a, b), [a, b])
        check_gradients(lambda a, b: ops.minimum(a, b), [a, b])


class TestUnary:
    @pytest.mark.parametrize("fn", [ops.exp, ops.log, ops.sqrt, ops.sigmoid,
                                    ops.tanh])
    def test_gradcheck(self, fn, rng):
        a = t(rng.uniform(0.5, 2.0, size=(4, 3)))
        check_gradients(lambda a: fn(a), [a])

    def test_relu_masks_negatives(self):
        out = ops.relu(t([-1.0, 0.5]))
        assert np.allclose(out.data, [0.0, 0.5])

    def test_relu6_clips(self):
        out = ops.relu6(t([-1.0, 3.0, 9.0]))
        assert np.allclose(out.data, [0.0, 3.0, 6.0])

    def test_clip_gradient_zero_outside(self):
        x = t([-2.0, 0.5, 3.0])
        out = ops.clip(x, 0.0, 1.0)
        out.backward(np.ones(3))
        assert np.allclose(x.grad, [0.0, 1.0, 0.0])

    def test_leaky_relu(self, rng):
        a = t(rng.normal(size=(5,)) + 0.01)
        check_gradients(lambda a: ops.leaky_relu(a, 0.1), [a])

    def test_abs(self, rng):
        a = t(rng.normal(size=(5,)) + 0.3)
        check_gradients(lambda a: ops.abs_(a), [a])


class TestShape:
    def test_reshape_roundtrip_grad(self, rng):
        a = t(rng.normal(size=(2, 6)))
        check_gradients(lambda a: ops.reshape(a, (3, 4)), [a])

    def test_flatten(self):
        a = t(np.zeros((2, 3, 4)))
        assert ops.flatten(a).shape == (2, 12)

    def test_transpose_gradcheck(self, rng):
        a = t(rng.normal(size=(2, 3, 4)))
        check_gradients(lambda a: ops.transpose(a, (2, 0, 1)), [a])

    def test_concat_gradcheck(self, rng):
        a = t(rng.normal(size=(2, 3)))
        b = t(rng.normal(size=(4, 3)))
        check_gradients(lambda a, b: ops.concat([a, b], axis=0), [a, b])

    def test_pad2d(self, rng):
        a = t(rng.normal(size=(1, 2, 3, 3)))
        out = ops.pad2d(a, 2)
        assert out.shape == (1, 2, 7, 7)
        check_gradients(lambda a: ops.pad2d(a, 1), [a])

    def test_getitem_gradcheck(self, rng):
        a = t(rng.normal(size=(5, 4)))
        check_gradients(lambda a: a[1:3], [a])

    def test_where(self, rng):
        cond = np.array([True, False, True])
        a, b = t(rng.normal(size=3)), t(rng.normal(size=3))
        out = ops.where(cond, a, b)
        assert np.allclose(out.data, np.where(cond, a.data, b.data))
        check_gradients(lambda a, b: ops.where(cond, a, b), [a, b])


class TestReductions:
    @pytest.mark.parametrize("axis,keepdims", [(None, False), (0, False),
                                               (1, True), ((0, 1), False)])
    def test_sum_gradcheck(self, axis, keepdims, rng):
        a = t(rng.normal(size=(3, 4)))
        check_gradients(lambda a: ops.sum_(a, axis=axis, keepdims=keepdims), [a])

    @pytest.mark.parametrize("axis", [None, 0, 1])
    def test_mean_gradcheck(self, axis, rng):
        a = t(rng.normal(size=(3, 5)))
        check_gradients(lambda a: ops.mean(a, axis=axis), [a])

    def test_max_min_gradcheck(self, rng):
        a = t(rng.normal(size=(4, 3)))
        check_gradients(lambda a: ops.max_(a, axis=1), [a])
        check_gradients(lambda a: ops.min_(a, axis=0), [a])

    def test_max_ties_split_gradient(self):
        a = t([2.0, 2.0, 1.0])
        out = ops.max_(a)
        out.backward()
        assert np.allclose(a.grad, [0.5, 0.5, 0.0])

    def test_mean_value(self):
        assert ops.mean(t([[1.0, 3.0]])).item() == pytest.approx(2.0)


class TestSoftmax:
    def test_softmax_sums_to_one(self, rng):
        out = ops.softmax(t(rng.normal(size=(5, 7))))
        assert np.allclose(out.data.sum(axis=-1), 1.0)

    def test_softmax_gradcheck(self, rng):
        a = t(rng.normal(size=(3, 4)))
        target = Tensor(rng.normal(size=(3, 4)))
        check_gradients(
            lambda a: ops.sum_(ops.softmax(a) * target), [a]
        )

    def test_log_softmax_matches_log_of_softmax(self, rng):
        a = t(rng.normal(size=(2, 5)))
        assert np.allclose(
            ops.log_softmax(a).data, np.log(ops.softmax(a).data), atol=1e-8
        )

    def test_log_softmax_gradcheck(self, rng):
        a = t(rng.normal(size=(3, 4)))
        target = Tensor(rng.normal(size=(3, 4)))
        check_gradients(lambda a: ops.sum_(ops.log_softmax(a) * target), [a])

    def test_softmax_stable_for_large_logits(self):
        out = ops.softmax(t([[1000.0, 1000.0]]))
        assert np.allclose(out.data, [[0.5, 0.5]])


@settings(max_examples=30, deadline=None)
@given(
    shape=st.tuples(st.integers(1, 4), st.integers(1, 4)),
)
def test_property_sum_gradient_is_ones(shape):
    """d(sum(x))/dx == 1 everywhere, any shape."""
    x = Tensor(np.random.default_rng(0).normal(size=shape), requires_grad=True)
    ops.sum_(x).backward()
    assert np.allclose(x.grad, np.ones(shape))


@settings(max_examples=30, deadline=None)
@given(
    rows=st.integers(1, 5), cols=st.integers(1, 5),
    scale=st.floats(0.1, 10.0),
)
def test_property_softmax_invariant_to_shift(rows, cols, scale):
    """softmax(x + c) == softmax(x) for any constant shift c."""
    rng = np.random.default_rng(rows * 10 + cols)
    x = rng.normal(size=(rows, cols)) * scale
    a = ops.softmax(Tensor(x))
    b = ops.softmax(Tensor(x + 123.45))
    assert np.allclose(a.data, b.data, atol=1e-6)
