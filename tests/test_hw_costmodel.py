"""Cost-model physics: conservation, monotonicity, order sensitivity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import (
    CANONICAL_ORDER,
    ConvWorkload,
    Dataflow,
    LevelTiling,
    evaluate_layer,
    evaluate_network,
    eyeriss_like_asic,
    random_dataflow,
    zc706_like_fpga,
)
from repro.hardware.costmodel import capacity_violation, make_valid

WL = ConvWorkload("t", 1, 32, 16, 14, 14, 3, 3)
DEV = eyeriss_like_asic()


def valid_flow(seed=0, workload=WL, device=DEV):
    rng = np.random.default_rng(seed)
    return make_valid(workload, random_dataflow(workload, device, rng), device)


class TestValidity:
    def test_make_valid_produces_valid(self):
        for seed in range(20):
            flow = valid_flow(seed)
            cost = evaluate_layer(WL, flow, DEV)
            assert cost.valid, cost.reason

    def test_uncovered_flow_invalid(self):
        empty = Dataflow(levels=tuple(
            LevelTiling(CANONICAL_ORDER, {}) for _ in range(4)))
        cost = evaluate_layer(WL, empty, DEV)
        assert not cost.valid
        assert "cover" in cost.reason

    def test_oversized_spatial_invalid(self):
        flow = valid_flow()
        bloated = Dataflow(levels=flow.levels, spatial={"K": 32, "Y": 14})
        cost = evaluate_layer(WL, bloated, DEV)
        assert not cost.valid or bloated.spatial_size <= DEV.num_pes

    def test_wrong_level_count_invalid(self):
        flow = valid_flow()
        short = Dataflow(levels=flow.levels[:3], spatial=flow.spatial)
        cost = evaluate_layer(WL, short, DEV)
        assert not cost.valid

    def test_capacity_violation_detects_huge_tiles(self):
        huge = Dataflow(levels=(
            LevelTiling(CANONICAL_ORDER, {}),
            LevelTiling(CANONICAL_ORDER, {}),
            LevelTiling(CANONICAL_ORDER, {}),
            LevelTiling(CANONICAL_ORDER, {"K": 32, "C": 16, "Y": 14, "X": 14}),
        ))
        assert capacity_violation(WL, huge, DEV) is not None

    def test_invalid_cost_is_infinite(self):
        empty = Dataflow(levels=tuple(
            LevelTiling(CANONICAL_ORDER, {}) for _ in range(4)))
        cost = evaluate_layer(WL, empty, DEV)
        assert cost.energy_pj == float("inf")
        assert cost.edp == float("inf")


class TestConservation:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 5000))
    def test_property_dram_traffic_at_least_compulsory(self, seed):
        """Every operand must cross the DRAM boundary at least once —
        no dataflow can beat compulsory traffic."""
        flow = valid_flow(seed)
        cost = evaluate_layer(WL, flow, DEV)
        assert cost.valid
        dram = cost.traffic_words["DRAM"]
        words = WL.tensor_words()
        assert dram["W"] >= words["W"] - 1e-6
        assert dram["O"] >= words["O"] - 1e-6
        # Input halo tiles may re-read boundary pixels, so >= holds too.
        assert dram["I"] >= words["I"] * 0.9

    def test_macs_independent_of_dataflow(self):
        a, b = valid_flow(1), valid_flow(2)
        assert evaluate_layer(WL, a, DEV).macs == evaluate_layer(WL, b, DEV).macs

    def test_energy_has_compute_floor(self):
        cost = evaluate_layer(WL, valid_flow(), DEV)
        floor = WL.macs * DEV.mac_energy_at(WL.bits)
        assert cost.energy_pj > floor


class TestBitScaling:
    def test_energy_decreases_with_bits(self):
        energies = []
        for bits in (4, 8, 16):
            wl = WL.with_bits(bits)
            flow = valid_flow(7, workload=wl)
            energies.append(evaluate_layer(wl, flow, DEV).energy_pj)
        assert energies[0] < energies[1] < energies[2]

    def test_latency_decreases_with_bits_via_packing(self):
        lats = []
        flow = valid_flow(7)
        for bits in (4, 8, 16):
            wl = WL.with_bits(bits)
            lats.append(evaluate_layer(wl, flow, DEV).latency_s)
        assert lats[0] <= lats[1] <= lats[2]

    def test_mac_energy_quadratic(self):
        assert DEV.mac_energy_at(8) == pytest.approx(DEV.mac_energy / 4)


class TestOrderSensitivity:
    def test_loop_order_changes_traffic(self):
        """The same tiling with different loop orders must cost
        differently — the property the whole search exploits."""
        tiles = [{"K": 8, "C": 4}, {"Y": 7}, {"C": 2, "K": 2}, {"R": 3, "S": 3}]
        order_a = ("N", "K", "C", "Y", "X", "R", "S")
        order_b = ("Y", "X", "N", "R", "S", "C", "K")
        flow_a = Dataflow(levels=tuple(
            LevelTiling(order_a, t) for t in tiles), spatial={"X": 14})
        flow_b = Dataflow(levels=tuple(
            LevelTiling(order_b, t) for t in tiles), spatial={"X": 14})
        flow_a = make_valid(WL, flow_a, DEV)
        flow_b = make_valid(WL, flow_b, DEV)
        e_a = evaluate_layer(WL, flow_a, DEV).energy_pj
        e_b = evaluate_layer(WL, flow_b, DEV).energy_pj
        assert e_a != pytest.approx(e_b, rel=1e-3)


class TestNetworkCost:
    def _flows(self, workloads, device=DEV):
        return [valid_flow(5, w, device) for w in workloads]

    def test_multicycle_latency_sums(self):
        wls = [WL, WL.with_batch(1)]
        flows = self._flows(wls)
        net = evaluate_network(wls, flows, DEV, pipeline=False)
        per_layer = [evaluate_layer(w, f, DEV).latency_s
                     for w, f in zip(wls, flows)]
        assert net.latency_s == pytest.approx(sum(per_layer))

    def test_pipeline_latency_is_max_stage(self):
        wls = [WL, WL]
        flows = []
        total = float(sum(w.macs for w in wls))
        for w in wls:
            share = w.macs / total
            rng = np.random.default_rng(3)
            f = make_valid(w, random_dataflow(w, DEV, rng), DEV, share, share)
            flows.append(f)
        net = evaluate_network(wls, flows, DEV, pipeline=True)
        assert net.valid
        assert net.latency_s == pytest.approx(
            max(c.latency_s for c in net.layer_costs))

    def test_fps_inverse_latency(self):
        wls = [WL]
        net = evaluate_network(wls, self._flows(wls), DEV, pipeline=False)
        assert net.fps == pytest.approx(1.0 / net.latency_s)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            evaluate_network([WL], [], DEV)

    def test_invalid_layer_poisons_network(self):
        empty = Dataflow(levels=tuple(
            LevelTiling(CANONICAL_ORDER, {}) for _ in range(4)))
        net = evaluate_network([WL], [empty], DEV)
        assert not net.valid and net.fps == 0.0


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 5000))
def test_property_make_valid_is_idempotent_fixed_point(seed):
    """Repairing a repaired flow changes nothing material: it stays valid."""
    flow = valid_flow(seed)
    again = make_valid(WL, flow, DEV)
    assert evaluate_layer(WL, again, DEV).valid


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 5000))
def test_property_fpga_flows_valid_too(seed):
    dev = zc706_like_fpga()
    rng = np.random.default_rng(seed)
    wl = WL.with_bits(8)
    flow = make_valid(wl, random_dataflow(wl, dev, rng), dev)
    assert evaluate_layer(wl, flow, dev).valid
