"""Inference engine micro-batching + precision policies."""

import numpy as np
import pytest

from repro.serve import (
    BitLatencyModel,
    InferenceEngine,
    InferenceRequest,
    LatencySLOPolicy,
    PolicyInputs,
    QueueDepthPolicy,
    SPNetConfig,
    StaticPolicy,
    build_sp_net,
    make_policy,
)


BITS = (4, 8, 16)
PER_IMAGE = {4: 0.001, 8: 0.002, 16: 0.004}
OVERHEAD = 0.001


@pytest.fixture(scope="module")
def sp_net():
    cfg = SPNetConfig(
        model="resnet8", bit_widths=BITS, num_classes=3,
        width_mult=0.25, image_size=8,
    )
    return build_sp_net(cfg)


def latency_model():
    return BitLatencyModel(dict(PER_IMAGE), batch_overhead_s=OVERHEAD)


def request(i, arrival, label=0):
    image = np.full((3, 8, 8), float(i), dtype=np.float32)
    return InferenceRequest(
        request_id=i, arrival_s=arrival, image=image, label=label
    )


def make_engine(sp_net, policy=None, **kwargs):
    kwargs.setdefault("max_batch", 4)
    kwargs.setdefault("batch_timeout_s", 0.010)
    kwargs.setdefault("clock", lambda: 0.0)
    return InferenceEngine(
        sp_net, policy or StaticPolicy(), latency_model(), **kwargs
    )


class TestBitLatencyModel:
    def test_batch_latency_is_affine(self):
        model = latency_model()
        assert model.batch_latency_s(8, 1) == pytest.approx(
            OVERHEAD + PER_IMAGE[8]
        )
        assert model.batch_latency_s(8, 5) == pytest.approx(
            OVERHEAD + 5 * PER_IMAGE[8]
        )

    def test_unknown_bits_raises(self):
        with pytest.raises(KeyError):
            latency_model().batch_latency_s(12, 1)

    def test_fastest_bits(self):
        assert latency_model().fastest_bits() == 4


class TestMicroBatching:
    def test_no_dispatch_before_timeout_or_full(self, sp_net):
        engine = make_engine(sp_net)
        engine.submit(request(0, 0.0))
        assert engine.dispatch(0.001) is None
        assert engine.queue_depth == 1

    def test_timeout_releases_partial_batch(self, sp_net):
        engine = make_engine(sp_net)
        engine.submit(request(0, 0.0))
        engine.submit(request(1, 0.002))
        record = engine.dispatch(0.010)  # timeout of oldest expired
        assert record is not None and record.size == 2
        assert engine.queue_depth == 0
        # Latency decomposition: queue wait + service.
        service = OVERHEAD + 2 * PER_IMAGE[16]
        assert record.results[0].latency_s == pytest.approx(0.010 + service)
        assert record.results[1].latency_s == pytest.approx(0.008 + service)

    def test_full_batch_releases_immediately(self, sp_net):
        engine = make_engine(sp_net)
        for i in range(6):
            engine.submit(request(i, 0.0))
        record = engine.dispatch(0.0)
        assert record is not None and record.size == 4  # max_batch
        assert engine.queue_depth == 2

    def test_flush_drains_everything(self, sp_net):
        engine = make_engine(sp_net)
        for i in range(6):
            engine.submit(request(i, 0.0))
        records = engine.drain(0.0)
        assert [r.size for r in records] == [4, 2]
        # Second batch starts when the first finishes.
        assert records[1].start_s == pytest.approx(records[0].finish_s)
        assert engine.queue_depth == 0

    def test_one_forward_per_batch_and_stats(self, sp_net):
        engine = make_engine(sp_net)
        for i in range(4):
            engine.submit(request(i, 0.0, label=i % 3))
        record = engine.dispatch(0.0)
        stats = engine.stats
        assert stats.batches == 1
        assert stats.completed == 4
        assert stats.requests_per_bit[16] == 4
        assert stats.labelled == 4
        assert record.bits == 16

    def test_next_release_time(self, sp_net):
        engine = make_engine(sp_net)
        assert engine.next_release_s() is None
        engine.submit(request(0, 0.003))
        assert engine.next_release_s() == pytest.approx(0.013)

    def test_controller_outside_candidates_rejected(self, sp_net):
        class Rogue(StaticPolicy):
            def choose_bits(self, inputs):
                return 12

        engine = make_engine(sp_net, policy=Rogue())
        engine.submit(request(0, 0.0))
        with pytest.raises(ValueError, match="candidate set"):
            engine.dispatch(1.0)


def inputs(queue_depth=0, batch_size=4, oldest_wait=0.0, p95=None,
           current=16):
    return PolicyInputs(
        now=1.0, batch_size=batch_size, queue_depth=queue_depth,
        oldest_wait_s=oldest_wait, recent_p95_s=p95, current_bits=current,
        bit_widths=BITS, max_batch=4, latency_model=latency_model(),
    )


class TestPolicies:
    def test_static_default_is_highest(self, sp_net):
        engine = make_engine(sp_net)  # StaticPolicy()
        engine.submit(request(0, 0.0))
        record = engine.dispatch(0.0, flush=True)
        assert record.bits == 16
        # The default stays unresolved on the instance: it is the
        # dispatching engine's highest, not a value baked in at attach.
        assert engine.controller.bits is None

    def test_static_rejects_non_candidate(self, sp_net):
        with pytest.raises(ValueError):
            make_engine(sp_net, policy=StaticPolicy(12))

    def test_slo_picks_highest_fitting_precision(self):
        policy = LatencySLOPolicy(slo_s=0.100, safety=1.0)
        # Idle: 16-bit batch fits a 100ms SLO easily.
        assert policy.choose_bits(inputs()) == 16
        # predicted(bits) = wait + (overhead + 4*per) * (1 + ceil(depth/4)):
        # at depth 40, 16-bit blows the SLO (0.187s) but 8-bit just fits
        # (0.099s); at depth 44 only the lowest precision drains in time.
        assert policy.choose_bits(inputs(queue_depth=40)) == 8
        assert policy.choose_bits(inputs(queue_depth=44)) == 4

    def test_slo_feedback_clamp_steps_down(self):
        policy = LatencySLOPolicy(slo_s=0.100, safety=1.0)
        # Analytically 16 still fits, but the measured p95 violates the
        # SLO, so only precisions below current (16) are eligible.
        assert policy.choose_bits(inputs(p95=0.200, current=16)) == 8

    def test_slo_feedback_clamp_holds_at_bottom_rung(self):
        policy = LatencySLOPolicy(slo_s=0.100, safety=1.0)
        # Already at the fastest precision with the tail still violated:
        # stay put instead of bouncing straight back to the top.
        assert policy.choose_bits(inputs(p95=0.200, current=4)) == 4

    def test_slo_worst_case_falls_to_lowest(self):
        policy = LatencySLOPolicy(slo_s=0.001, safety=1.0)
        assert policy.choose_bits(inputs(oldest_wait=1.0)) == 4

    def test_queue_depth_ladder(self):
        policy = QueueDepthPolicy(low=0, high=16)
        assert policy.choose_bits(inputs(queue_depth=0)) == 16
        assert policy.choose_bits(inputs(queue_depth=8)) == 8
        assert policy.choose_bits(inputs(queue_depth=16)) == 4
        assert policy.choose_bits(inputs(queue_depth=100)) == 4

    def test_make_policy_registry(self):
        assert make_policy("static").name == "static"
        assert make_policy("slo", slo_s=0.1).name == "slo"
        assert make_policy("queue").name == "queue"
        with pytest.raises(ValueError):
            make_policy("rl-agent")

    def test_slo_validation(self):
        with pytest.raises(ValueError):
            LatencySLOPolicy(slo_s=0.0)
        with pytest.raises(ValueError):
            LatencySLOPolicy(slo_s=1.0, safety=1.5)

    def test_queue_validation(self):
        with pytest.raises(ValueError):
            QueueDepthPolicy(low=-1)
        with pytest.raises(ValueError):
            QueueDepthPolicy(low=5, high=5)

    def test_slo_clamp_with_foreign_current_bits_falls_to_fastest(self):
        """Regression: when current_bits is not in the candidate ladder
        (policy reused across checkpoints with different bit sets) the
        over-SLO clamp must fall to the fastest rung, not silently
        no-op and keep serving above the SLO."""
        policy = LatencySLOPolicy(slo_s=0.100, safety=1.0)
        # current=12 is not one of BITS=(4, 8, 16); p95 violates the SLO.
        assert policy.choose_bits(inputs(p95=0.200, current=12)) == 4
        # Without the violation the foreign current_bits is irrelevant.
        assert policy.choose_bits(inputs(current=12)) == 16


class TestPolicyReattachSemantics:
    """One policy instance serves many engines without stale config —
    the property fleet replicas rely on when sharing a controller."""

    def small_net(self, bits):
        cfg = SPNetConfig(
            model="resnet8", bit_widths=bits, num_classes=3,
            width_mult=0.25, image_size=8,
        )
        return build_sp_net(cfg)

    def test_static_default_tracks_each_engine(self, sp_net):
        policy = StaticPolicy()
        big = make_engine(sp_net, policy=policy)          # bits (4, 8, 16)
        small_net = self.small_net((2, 4))
        small = InferenceEngine(
            small_net, policy,
            BitLatencyModel({2: 0.0005, 4: 0.001}, batch_overhead_s=0.001),
            max_batch=4, batch_timeout_s=0.010, clock=lambda: 0.0,
        )
        big.submit(request(0, 0.0))
        assert big.dispatch(0.0, flush=True).bits == 16
        small.submit(request(0, 0.0))
        assert small.dispatch(0.0, flush=True).bits == 4
        # And the first engine still serves ITS highest afterwards.
        big.submit(request(1, 0.0))
        assert big.dispatch(0.0, flush=True).bits == 16

    def test_static_reattach_revalidates_against_new_engine(self, sp_net):
        policy = StaticPolicy(bits=16)
        make_engine(sp_net, policy=policy)  # 16 is a candidate here
        small_net = self.small_net((2, 4))
        with pytest.raises(ValueError, match="candidate set"):
            InferenceEngine(
                small_net, policy,
                BitLatencyModel({2: 0.0005, 4: 0.001}),
                max_batch=4, clock=lambda: 0.0,
            )

    def test_queue_high_default_tracks_each_engine_max_batch(self):
        policy = QueueDepthPolicy()
        assert policy.high is None
        assert policy.saturation_depth(4) == 16
        assert policy.saturation_depth(8) == 32
        # Attach never bakes a resolved value into the instance.
        small_net = self.small_net((4, 8))
        InferenceEngine(
            small_net, policy,
            BitLatencyModel({4: 0.001, 8: 0.002}),
            max_batch=8, clock=lambda: 0.0,
        )
        assert policy.high is None
        # Depth 16 saturates a max_batch=4 engine (lowest precision)...
        assert policy.choose_bits(inputs(queue_depth=16)) == 4
        # ...but is only mid-ladder for a max_batch=8 engine.
        wide = PolicyInputs(
            now=1.0, batch_size=8, queue_depth=16, oldest_wait_s=0.0,
            recent_p95_s=None, current_bits=16, bit_widths=BITS,
            max_batch=8, latency_model=latency_model(),
        )
        assert policy.choose_bits(wide) == 8

    def test_shared_policy_decisions_are_input_pure(self, sp_net):
        """choose_bits depends only on the inputs snapshot: attaching to
        another engine in between must not change a decision."""
        policy = LatencySLOPolicy(slo_s=0.100, safety=1.0)
        make_engine(sp_net, policy=policy)
        before = policy.choose_bits(inputs(queue_depth=40))
        other = self.small_net((2, 4))
        InferenceEngine(
            other, policy, BitLatencyModel({2: 0.0005, 4: 0.001}),
            max_batch=4, clock=lambda: 0.0,
        )
        assert policy.choose_bits(inputs(queue_depth=40)) == before


class TestEngineStatsWindow:
    """Sliding-window p95 edge cases + the LatencySummary seam."""

    @staticmethod
    def stats(window):
        from repro.serve.engine import EngineStats

        return EngineStats(BITS, window=window)

    @staticmethod
    def batch(latencies, bits=8, first_id=0):
        from repro.serve.engine import BatchRecord, InferenceResult

        results = tuple(
            InferenceResult(
                request_id=first_id + i, arrival_s=0.0, start_s=0.0,
                finish_s=lat, bits=bits, prediction=0,
            )
            for i, lat in enumerate(latencies)
        )
        finish = max(lat for lat in latencies)
        return BatchRecord(
            bits=bits, start_s=0.0, finish_s=finish, results=results
        )

    def test_empty_window_has_no_p95(self):
        assert self.stats(window=4).recent_p95_s() is None

    def test_single_sample_is_its_own_p95(self):
        stats = self.stats(window=4)
        stats.record_batch(self.batch([0.030]))
        assert stats.recent_p95_s() == pytest.approx(0.030)

    def test_window_evicts_oldest_samples(self):
        stats = self.stats(window=4)
        # One slow outlier, then enough fast requests to push it out.
        stats.record_batch(self.batch([5.0]))
        stats.record_batch(self.batch([0.010, 0.010], first_id=1))
        assert stats.recent_p95_s() > 1.0        # outlier still in window
        stats.record_batch(self.batch([0.010, 0.010], first_id=3))
        assert stats.recent_p95_s() == pytest.approx(0.010)
        # The full-history percentile still remembers the outlier.
        assert stats.percentile_s(100) == pytest.approx(5.0)

    def test_latency_summary_matches_full_history(self):
        stats = self.stats(window=2)
        stats.record_batch(self.batch([0.010, 0.020, 0.040]))
        summary = stats.latency_summary()
        assert summary.mean_s == pytest.approx(sum([0.010, 0.020, 0.040]) / 3)
        assert summary.max_s == pytest.approx(0.040)
        assert summary.p50_s == pytest.approx(0.020)
