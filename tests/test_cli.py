"""CLI smoke paths: exit codes and help plumbing for every subcommand."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.__main__ import main


REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")


class TestList:
    def test_exit_code_and_output(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out.split()
        assert "table1" in out and "fig7" in out

    def test_module_invocation(self):
        import os

        env = dict(os.environ)
        env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "list"],
            capture_output=True, text=True, env=env,
        )
        assert proc.returncode == 0
        assert "table1" in proc.stdout


class TestRun:
    def test_unknown_experiment_exit_code(self, capsys):
        assert main(["run", "nosuch"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_bad_scale_rejected(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "table1", "--scale", "galactic"])
        assert excinfo.value.code == 2

    @pytest.mark.slow
    def test_smoke_run_exit_code(self, capsys):
        assert main(["run", "fig5", "--scale", "smoke"]) == 0
        assert "fig5" in capsys.readouterr().out


class TestHelp:
    def test_top_level_help(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "serve-sim" in out and "bench" in out

    def test_bench_help_renders_options(self, capsys):
        """`repro bench --help` must go through argparse, options included."""
        with pytest.raises(SystemExit) as excinfo:
            main(["bench", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "--update-baseline" in out
        assert "--factor" in out

    def test_serve_sim_help(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve-sim", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "--scenario" in out and "--policy" in out

    def test_no_command_is_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main([])
        assert excinfo.value.code == 2

    def test_loadtest_help(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["loadtest", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "--config" in out and "--output-dir" in out


class TestLoadtest:
    def test_missing_config_is_error(self, capsys, tmp_path):
        assert main(
            ["loadtest", "--config", str(tmp_path / "nope.json")]
        ) == 2
        assert "invalid loadtest config" in capsys.readouterr().err

    def test_invalid_config_is_error(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"scenarios": ["warp-speed"]}')
        assert main(["loadtest", "--config", str(path)]) == 2
        assert "warp-speed" in capsys.readouterr().err


class TestChoicesComeFromManifest:
    """CLI choice lists are built from the import-free registry manifest
    (repro.api.manifest) rather than hand-copied literals; this pins the
    parser to the manifest, and tests/test_api_registry.py pins the
    manifest to the defining modules' own registries."""

    @staticmethod
    def _subparser(name):
        import argparse

        from repro.__main__ import _build_parser

        parser = _build_parser()
        subparsers = next(
            a for a in parser._actions
            if isinstance(a, argparse._SubParsersAction)
        )
        return subparsers.choices[name]

    def test_serve_sim_choices_match_manifest(self):
        from repro.api.manifest import manifest

        names = manifest()
        serve = self._subparser("serve-sim")
        choices = {a.dest: a.choices for a in serve._actions
                   if a.choices is not None}
        assert tuple(choices["scenario"]) == names["scenarios"]
        assert tuple(choices["policy"]) == ("all",) + names["policies"]
        assert tuple(choices["scale"]) == names["serve_scales"]
        assert tuple(choices["router"]) == names["routers"]

    def test_workload_scenarios_reach_parser_without_hand_edits(self):
        """Scenarios registered by repro.workload appear in the
        serve-sim parser purely through the registry manifest — the
        parser has no literal scenario list to forget to update."""
        from repro.api.manifest import manifest

        serve = self._subparser("serve-sim")
        scenario_choices = next(
            a.choices for a in serve._actions if a.dest == "scenario"
        )
        for name in ("flash_crowd", "ramp", "sawtooth", "on_off",
                     "pareto_heavy_tail"):
            assert name in manifest()["scenarios"]
            assert name in scenario_choices

    def test_trace_transforms_in_manifest(self):
        from repro.api.manifest import manifest

        assert manifest()["trace_transforms"] == (
            "time_scale", "splice", "tenant_mix", "amplitude_modulate",
        )

    def test_run_scale_choices_match_manifest(self):
        from repro.api.manifest import manifest

        run = self._subparser("run")
        choices = {a.dest: a.choices for a in run._actions
                   if a.choices is not None}
        assert tuple(choices["scale"]) == manifest()["scales"]

    def test_parser_build_does_not_import_serve_stack(self):
        """The whole point of the lazy manifest: `repro --help` must not
        pay for numpy-heavy subsystem imports."""
        import subprocess

        code = (
            "import sys; import repro.__main__ as m; m._build_parser(); "
            "heavy = [name for name in ('repro.serve', 'repro.quant', "
            "'repro.experiments', 'repro.core', 'repro.hardware') "
            "if name in sys.modules]; "
            "sys.exit(2 if heavy else 0)"
        )
        import os

        env = dict(os.environ)
        env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, env=env,
        )
        assert proc.returncode == 0, proc.stderr.decode()
