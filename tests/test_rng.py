"""Seeding and stream independence."""

import numpy as np

from repro import rng as rng_mod


class TestSeeding:
    def test_global_stream_deterministic(self):
        rng_mod.set_seed(42)
        a = rng_mod.get_rng().random(5)
        rng_mod.set_seed(42)
        b = rng_mod.get_rng().random(5)
        assert np.allclose(a, b)

    def test_spawn_same_key_same_stream(self):
        rng_mod.set_seed(7)
        a = rng_mod.spawn_rng("data").random(5)
        b = rng_mod.spawn_rng("data").random(5)
        assert np.allclose(a, b)

    def test_spawn_different_keys_differ(self):
        rng_mod.set_seed(7)
        a = rng_mod.spawn_rng("data").random(5)
        b = rng_mod.spawn_rng("weights").random(5)
        assert not np.allclose(a, b)

    def test_spawn_independent_of_global_consumption(self):
        rng_mod.set_seed(7)
        rng_mod.get_rng().random(1000)  # burn the global stream
        a = rng_mod.spawn_rng("data").random(5)
        rng_mod.set_seed(7)
        b = rng_mod.spawn_rng("data").random(5)
        assert np.allclose(a, b)

    def test_different_seed_changes_spawned(self):
        rng_mod.set_seed(1)
        a = rng_mod.spawn_rng("k").random(3)
        rng_mod.set_seed(2)
        b = rng_mod.spawn_rng("k").random(3)
        assert not np.allclose(a, b)
