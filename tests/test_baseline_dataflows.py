"""Expert dataflow baselines: validity and characteristic structure."""

import numpy as np
import pytest

from repro.baselines.dataflows import (
    MAGNET_TEMPLATES,
    baseline_mapper,
    chaidnn_mapper,
    dnnbuilder_mapper,
    eyeriss_row_stationary,
    magnet_mapper,
)
from repro.hardware import (
    alexnet_workloads,
    evaluate_layer,
    eyeriss_like_asic,
    mobilenetv2_workloads,
    zc706_like_fpga,
)

ASIC = eyeriss_like_asic()
FPGA = zc706_like_fpga()


class TestPerLayerMappers:
    @pytest.mark.parametrize("mapper", [eyeriss_row_stationary, chaidnn_mapper])
    def test_valid_on_alexnet_asic(self, mapper):
        for w in alexnet_workloads():
            flow = mapper(w, ASIC)
            assert evaluate_layer(w, flow, ASIC).valid, w.name

    def test_dnnbuilder_valid_on_fpga(self):
        for w in alexnet_workloads()[:4]:
            flow = dnnbuilder_mapper(w, FPGA, tuning_budget=10)
            assert evaluate_layer(w, flow, FPGA).valid, w.name

    def test_eyeriss_valid_on_depthwise(self):
        dw = [w for w in mobilenetv2_workloads() if w.groups > 1][0]
        flow = eyeriss_row_stationary(dw, ASIC)
        assert evaluate_layer(dw, flow, ASIC).valid

    def test_eyeriss_uses_row_spatial(self):
        w = alexnet_workloads()[1]
        flow = eyeriss_row_stationary(w, ASIC)
        # RS maps filter rows and output rows across the array.
        assert flow.spatial_factor("R") > 1 or flow.spatial_factor("Y") > 1


class TestMagnet:
    def test_templates_are_permutations(self):
        from repro.hardware.workload import DIMS

        for name, orders in MAGNET_TEMPLATES.items():
            assert len(orders) == 4
            for order in orders:
                assert sorted(order) == sorted(DIMS), name

    def test_magnet_picks_one_template_for_network(self):
        wls = alexnet_workloads()[:3]
        flows, template = magnet_mapper(wls, ASIC, tuning_budget=5)
        assert template in MAGNET_TEMPLATES
        assert len(flows) == 3
        for w, f in zip(wls, flows):
            assert evaluate_layer(w, f, ASIC).valid

    def test_magnet_orders_frozen_to_template(self):
        wls = alexnet_workloads()[:2]
        flows, template = magnet_mapper(wls, ASIC, tuning_budget=5)
        expected = MAGNET_TEMPLATES[template]
        for flow in flows:
            for level, order in zip(flow.levels, expected):
                assert level.order == tuple(order)


class TestBaselineMapperAPI:
    def test_all_baselines_produce_valid_networks(self):
        wls = alexnet_workloads()[:4]
        for name, dev in (("eyeriss", ASIC), ("magnet", ASIC),
                          ("chaidnn", FPGA), ("dnnbuilder", FPGA)):
            cost = baseline_mapper(name, wls, dev)
            assert cost.valid, name

    def test_dnnbuilder_is_pipelined(self):
        cost = baseline_mapper("dnnbuilder", alexnet_workloads()[:3], FPGA)
        assert cost.pipeline

    def test_eyeriss_is_multicycle(self):
        cost = baseline_mapper("eyeriss", alexnet_workloads()[:3], ASIC)
        assert not cost.pipeline

    def test_unknown_baseline(self):
        with pytest.raises(ValueError):
            baseline_mapper("tpu", alexnet_workloads()[:1], ASIC)
