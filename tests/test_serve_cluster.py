"""Replica fleet: routing, scaling, determinism, report shape."""

import json

import numpy as np
import pytest

from repro.api.config import AutoscaleConfig, ConfigError
from repro.serve import (
    Autoscaler,
    BitLatencyModel,
    InferenceEngine,
    InferenceRequest,
    LatencyAwareRouter,
    LeastQueueRouter,
    ModelRegistry,
    ReplicaFleet,
    ReplicaSnapshot,
    RoundRobinRouter,
    RouterInputs,
    SPNetConfig,
    StaticPolicy,
    build_fleet_report,
    build_sp_net,
    make_fleet,
    make_router,
    run_fleet_sim,
    simulate_fleet,
)
from repro.serve.simulator import ServeScale, prepare_simulation

BITS = (4, 8, 16)
PER_IMAGE = {4: 0.001, 8: 0.002, 16: 0.004}
OVERHEAD = 0.001

CFG = SPNetConfig(
    model="resnet8", bit_widths=BITS, num_classes=3,
    width_mult=0.25, image_size=8,
)

# Ends mid-burst (96 = 2 full bursty cycles), so a backlog remains when
# arrivals stop and extra replicas demonstrably shorten the drain.
FLEET_TINY = ServeScale(
    name="fleet-tiny", num_requests=96, image_size=8, num_classes=3,
    width_mult=0.25, bit_widths=BITS, max_batch=8, mapper_generations=2,
)


def latency_model():
    return BitLatencyModel(dict(PER_IMAGE), batch_overhead_s=OVERHEAD)


def request(i, arrival, label=0):
    image = np.full((3, 8, 8), float(i % 7), dtype=np.float32)
    return InferenceRequest(
        request_id=i, arrival_s=arrival, image=image, label=label
    )


def engine_factory(max_batch=4, policy_cls=StaticPolicy):
    def factory(index):
        return InferenceEngine(
            build_sp_net(CFG), policy_cls(), latency_model(),
            max_batch=max_batch, batch_timeout_s=0.010, clock=lambda: 0.0,
        )
    return factory


def snapshots(*specs):
    """ReplicaSnapshot tuple from (queue_depth, busy_until, bits) specs."""
    return tuple(
        ReplicaSnapshot(
            index=i, queue_depth=q, max_batch=4,
            busy_until_s=busy, current_bits=bits,
        )
        for i, (q, busy, bits) in enumerate(specs)
    )


class TestRouters:
    def test_round_robin_cycles_and_resets_on_attach(self):
        router = RoundRobinRouter()
        inputs = RouterInputs(
            now=0.0,
            replicas=snapshots((0, 0.0, 16), (0, 0.0, 16), (0, 0.0, 16)),
            latency_model=latency_model(),
        )
        assert [router.route(inputs) for _ in range(5)] == [0, 1, 2, 0, 1]
        router.attach(fleet=None)  # re-attach starts a clean rotation
        assert router.route(inputs) == 0

    def test_least_queue_picks_min_with_index_tiebreak(self):
        router = LeastQueueRouter()
        inputs = RouterInputs(
            now=0.0,
            replicas=snapshots((3, 0.0, 16), (1, 0.0, 16), (1, 0.0, 16)),
            latency_model=latency_model(),
        )
        assert router.route(inputs) == 1

    def test_latency_aware_prefers_fast_draining_replica(self):
        router = LatencyAwareRouter()
        # Replica 0 idle but serving at 16-bit with 4 queued; replica 1
        # busy a moment longer but at 4-bit with the same backlog — the
        # cost model says the low-precision replica finishes first.
        inputs = RouterInputs(
            now=0.0,
            replicas=snapshots((4, 0.0, 16), (4, 0.002, 4)),
            latency_model=latency_model(),
        )
        assert router.route(inputs) == 1
        # With equal precision, the idle replica wins.
        inputs = RouterInputs(
            now=0.0,
            replicas=snapshots((4, 0.0, 16), (4, 0.002, 16)),
            latency_model=latency_model(),
        )
        assert router.route(inputs) == 0

    def test_make_router_registry(self):
        assert make_router("round_robin").name == "round_robin"
        assert make_router("least_queue").name == "least_queue"
        assert make_router("latency_aware").name == "latency_aware"
        with pytest.raises(ValueError, match="unknown router"):
            make_router("dice")

    def test_router_names_is_live_view(self):
        from repro.api.registry import ROUTERS
        from repro.serve.routing import ROUTER_NAMES, Router

        name = "test-sticky"
        assert name not in ROUTER_NAMES

        @ROUTERS.register(name)
        class Sticky(Router):
            def route(self, inputs):
                return 0

        try:
            assert name in ROUTER_NAMES
            assert name in tuple(ROUTER_NAMES)
            assert isinstance(make_router(name), Sticky)
        finally:
            ROUTERS._entries.pop(name, None)
        assert name not in ROUTER_NAMES


class TestFleetRouting:
    def test_least_queue_balances_across_replicas(self):
        fleet = ReplicaFleet(
            engine_factory(), replicas=3, router="least_queue"
        )
        for i in range(6):
            fleet.submit(request(i, 0.0))
        assert [e.queue_depth for e in fleet.engines()] == [2, 2, 2]

    def test_round_robin_rotation(self):
        fleet = ReplicaFleet(
            engine_factory(), replicas=2, router="round_robin"
        )
        targets = [fleet.submit(request(i, 0.0)) for i in range(4)]
        assert targets == [0, 1, 0, 1]

    def test_draining_replica_not_routable_but_finishes_queue(self):
        fleet = ReplicaFleet(
            engine_factory(), replicas=2, router="round_robin"
        )
        fleet.submit(request(0, 0.0))   # -> replica 0
        fleet._scale_down()             # drains replica 1 (empty -> stopped)
        assert fleet.replica_states() == ("active", "stopped")
        assert all(fleet.submit(request(i, 0.0)) == 0 for i in range(1, 4))
        # Now drain replica 0 while it holds the whole queue.
        fleet._replicas[0].state = "draining"
        fleet._replicas[1].state = "active"
        records = fleet.step(0.0)
        assert sum(r.size for r in records) == 4
        assert fleet.replica_states()[0] == "stopped"

    def test_no_active_replicas_rejected(self):
        fleet = ReplicaFleet(engine_factory(), replicas=1)
        fleet._replicas[0].state = "stopped"
        with pytest.raises(RuntimeError, match="no active replicas"):
            fleet.submit(request(0, 0.0))


class TestAutoscaler:
    def autoscaled_fleet(self, **overrides):
        cfg = dict(
            min_replicas=1, max_replicas=3,
            up_pressure=1.0, down_pressure=0.25, cooldown_batches=1.0,
        )
        cfg.update(overrides)
        return ReplicaFleet(
            engine_factory(), replicas=1, router="least_queue",
            autoscaler=Autoscaler(AutoscaleConfig(**cfg)),
        )

    def test_burst_scales_up_then_quiet_scales_down(self):
        fleet = self.autoscaled_fleet()
        # A synthetic burst, then a slow trickle giving the fleet time
        # to observe low pressure and retire the extra replicas.
        burst = [request(i, 0.0001 * i) for i in range(40)]
        trickle = [request(40 + i, 0.5 + 0.05 * i) for i in range(20)]
        simulate_fleet(fleet, burst + trickle)
        actions = [e.action for e in fleet.scale_events]
        assert "scale_up" in actions and "scale_down" in actions
        assert actions[0] == "scale_up"
        # Every event moves the active count by one, in range.
        for event in fleet.scale_events:
            assert abs(event.to_replicas - event.from_replicas) == 1
            assert 1 <= event.to_replicas <= 3
        times = [e.time_s for e in fleet.scale_events]
        assert times == sorted(times)
        # The quiet tail retires the burst capacity down to the minimum.
        assert fleet.num_active == 1
        assert fleet.pending() == 0

    def test_scale_up_honors_max_replicas(self):
        fleet = self.autoscaled_fleet(max_replicas=2)
        simulate_fleet(fleet, [request(i, 0.0001 * i) for i in range(64)])
        assert max(e.to_replicas for e in fleet.scale_events) <= 2
        assert fleet.size <= 2

    def test_cooldown_spaces_events(self):
        fleet = self.autoscaled_fleet(cooldown_batches=2.0)
        simulate_fleet(fleet, [request(i, 0.0001 * i) for i in range(64)])
        cooldown = 2.0 * fleet.full_batch_service_s()
        times = [e.time_s for e in fleet.scale_events]
        assert all(
            later - earlier >= cooldown - 1e-12
            for earlier, later in zip(times, times[1:])
        )

    def test_initial_replicas_outside_range_rejected(self):
        with pytest.raises(ValueError, match="autoscale range"):
            ReplicaFleet(
                engine_factory(), replicas=5,
                autoscaler=Autoscaler(
                    AutoscaleConfig(min_replicas=1, max_replicas=3)
                ),
            )

    def test_autoscale_config_validation(self):
        with pytest.raises(ConfigError, match="max_replicas"):
            AutoscaleConfig(min_replicas=4, max_replicas=2)
        with pytest.raises(ConfigError, match="flap"):
            AutoscaleConfig(up_pressure=0.5, down_pressure=0.5)
        with pytest.raises(ConfigError, match="positive"):
            AutoscaleConfig(min_replicas=0)


class TestAutoscalerLifecycleEdges:
    """Regressions for the replica lifecycle the autoscaler drives:
    draining replicas are invisible to every router, warm re-activation
    reuses the drained engine instead of re-materializing, and
    scale-down stops at the configured floor."""

    def drained_fleet(self, router):
        """3 replicas, middle one draining with work still queued."""
        fleet = ReplicaFleet(engine_factory(), replicas=3, router=router)
        fleet._replicas[1].engine.submit(request(99, 0.0))
        fleet._replicas[1].state = "draining"
        return fleet

    @pytest.mark.parametrize(
        "router", ["round_robin", "least_queue", "latency_aware"]
    )
    def test_draining_replica_excluded_by_every_router(self, router):
        fleet = self.drained_fleet(router)
        # The draining replica has the SHORTEST queue after one submit
        # lands elsewhere, so a router that forgot to filter by state
        # (least_queue, latency_aware) would pick it immediately.
        targets = [fleet.submit(request(i, 0.0)) for i in range(6)]
        assert 1 not in targets
        assert set(targets) <= {0, 2}

    def test_warm_reactivation_keeps_the_engine_instance(self):
        fleet = ReplicaFleet(
            engine_factory(), replicas=2, router="least_queue",
            autoscaler=Autoscaler(
                AutoscaleConfig(min_replicas=1, max_replicas=3)
            ),
        )
        drained_engine = fleet._replicas[1].engine
        fleet._scale_down()
        assert fleet.replica_states() == ("active", "stopped")
        fleet._scale_up()
        # Re-activation restores the SAME engine (and its model): no
        # new replica was materialized and no weights were rebuilt.
        assert fleet.replica_states() == ("active", "active")
        assert fleet._replicas[1].engine is drained_engine
        assert fleet.size == 2

    def test_scale_up_prefers_draining_over_stopped_over_new(self):
        fleet = ReplicaFleet(engine_factory(), replicas=3)
        fleet.max_replicas = 4
        fleet._replicas[1].state = "stopped"
        fleet._replicas[2].engine.submit(request(0, 0.0))
        fleet._replicas[2].state = "draining"
        fleet._scale_up()
        # The draining replica (work in flight) comes back first.
        assert fleet.replica_states() == ("active", "stopped", "active")
        fleet._scale_up()
        assert fleet.replica_states() == ("active", "active", "active")
        fleet._scale_up()            # only now is a new one materialized
        assert fleet.size == 4

    def test_scale_down_never_drops_below_min_replicas(self):
        fleet = ReplicaFleet(
            engine_factory(), replicas=2, router="least_queue",
            autoscaler=Autoscaler(AutoscaleConfig(
                min_replicas=2, max_replicas=3,
                up_pressure=50.0,        # never scale up
                down_pressure=10.0,      # always "quiet": pressure tiny
            )),
        )
        # A long trickle of idle time: the down signal holds at every
        # evaluation, yet the floor must hold too.
        simulate_fleet(
            fleet, [request(i, 0.05 * i) for i in range(24)]
        )
        assert fleet.num_active == 2
        assert all(e.to_replicas >= 2 for e in fleet.scale_events)

    def test_min_floor_holds_even_after_burst_cycle(self):
        fleet = ReplicaFleet(
            engine_factory(), replicas=2, router="least_queue",
            autoscaler=Autoscaler(AutoscaleConfig(
                min_replicas=2, max_replicas=3,
                up_pressure=1.0, down_pressure=0.5, cooldown_batches=1.0,
            )),
        )
        burst = [request(i, 0.0001 * i) for i in range(48)]
        trickle = [request(48 + i, 0.5 + 0.05 * i) for i in range(20)]
        simulate_fleet(fleet, burst + trickle)
        assert fleet.num_active >= 2
        assert all(e.to_replicas >= 2 for e in fleet.scale_events)


class TestMaterialize:
    def test_materialize_returns_independent_identical_models(self, tmp_path):
        from repro.tensor import Tensor, no_grad

        registry = ModelRegistry(str(tmp_path))
        sp_net = build_sp_net(CFG)
        registry.register("m", sp_net, CFG, persist=True)
        a, _ = registry.materialize("m")
        b, _ = registry.materialize("m")
        assert a is not b and a is not registry.get("m")
        x = np.random.default_rng(0).normal(size=(2, 3, 8, 8)).astype(
            np.float32
        )
        a.eval(), b.eval()
        with no_grad():
            np.testing.assert_array_equal(
                a(Tensor(x), bits=8).data, b(Tensor(x), bits=8).data
            )

    def test_materialize_persists_live_only_model_first(self, tmp_path):
        registry = ModelRegistry(str(tmp_path))
        registry.register("live", build_sp_net(CFG), CFG)  # not persisted
        sp_net, _ = registry.materialize("live")
        assert sp_net is not registry.get("live")
        assert (tmp_path / "live.npz").exists()

    def test_materialize_without_root_fails_loudly(self):
        registry = ModelRegistry()
        registry.register("live", build_sp_net(CFG), CFG)
        with pytest.raises(ValueError, match="live-only"):
            registry.materialize("live")

    def test_materialize_unknown_name(self, tmp_path):
        with pytest.raises(KeyError, match="unknown model"):
            ModelRegistry(str(tmp_path)).materialize("ghost")


@pytest.mark.slow
class TestFleetEndToEnd:
    def test_fleet_reports_are_deterministic(self):
        a = run_fleet_sim(
            "bursty", "slo", FLEET_TINY, seed=3, replicas=3,
            router="least_queue",
        )
        b = run_fleet_sim(
            "bursty", "slo", FLEET_TINY, seed=3, replicas=3,
            router="least_queue",
        )
        assert json.dumps([r.to_json_dict() for r in a], sort_keys=True) == \
            json.dumps([r.to_json_dict() for r in b], sort_keys=True)

    def test_autoscaled_fleet_is_deterministic(self):
        kwargs = dict(
            scenario="bursty", policy="slo", scale=FLEET_TINY, seed=0,
            replicas=1, router="latency_aware",
            autoscale=AutoscaleConfig(min_replicas=1, max_replicas=4),
        )
        a = run_fleet_sim(**kwargs)
        b = run_fleet_sim(**kwargs)
        assert json.dumps([r.to_json_dict() for r in a], sort_keys=True) == \
            json.dumps([r.to_json_dict() for r in b], sort_keys=True)

    def test_more_replicas_strictly_raise_throughput(self):
        (one,) = run_fleet_sim(
            "bursty", "slo", FLEET_TINY, seed=0, replicas=1,
            router="least_queue",
        )
        (four,) = run_fleet_sim(
            "bursty", "slo", FLEET_TINY, seed=0, replicas=4,
            router="least_queue",
        )
        assert four.num_requests == one.num_requests == 96
        assert four.throughput_rps > one.throughput_rps
        assert four.latency_p95_s <= one.latency_p95_s

    def test_every_router_serves_the_whole_stream(self):
        for router in ("round_robin", "least_queue", "latency_aware"):
            (report,) = run_fleet_sim(
                "bursty", "queue", FLEET_TINY, seed=1, replicas=2,
                router=router,
            )
            assert report.router == router
            assert report.num_requests == 96
            assert sum(report.occupancy.values()) == 96
            served = sum(
                sum(rep["occupancy"].values()) for rep in report.per_replica
            )
            assert served == 96

    def test_report_shape_and_per_replica_sections(self):
        (report,) = run_fleet_sim(
            "bursty", "slo", FLEET_TINY, seed=0, replicas=2,
            router="least_queue",
        )
        assert report.replicas == 2 and report.max_replicas == 2
        assert not report.autoscaled and report.scale_events == []
        assert (
            report.latency_p50_s
            <= report.latency_p95_s
            <= report.latency_p99_s
            <= report.latency_max_s
        )
        assert len(report.per_replica) == 2
        for rep in report.per_replica:
            assert rep["state"] == "active"
            assert 0.0 <= rep["utilization"] <= 1.0
            assert rep["requests"] == sum(rep["occupancy"].values())
        payload = report.to_json_dict()
        assert set(payload["occupancy"]) == {"4", "8", "16"}
        json.dumps(payload)  # JSON-serialisable end to end

    def test_make_fleet_via_registry_materializes_replicas(self, tmp_path):
        registry = ModelRegistry(str(tmp_path))
        sp_net = build_sp_net(CFG)
        registry.register("ckpt", sp_net, CFG, persist=True)
        fixture = prepare_simulation("constant", FLEET_TINY, config=CFG)
        fleet = make_fleet(
            fixture, "static", replicas=2, router="round_robin",
            registry=registry, model_name="ckpt",
        )
        nets = {id(e.sp_net) for e in fleet.engines()}
        assert len(nets) == 2 and id(sp_net) not in nets
        end_s = simulate_fleet(fleet, fixture.requests)
        report = build_fleet_report(
            "constant", "static", fixture.scale, fleet, end_s,
            fixture.slo_s,
        )
        assert report.num_requests == len(fixture.requests)

    def test_make_fleet_registry_requires_model_name(self):
        fixture = prepare_simulation("constant", FLEET_TINY, config=CFG)
        with pytest.raises(ValueError, match="model_name"):
            make_fleet(fixture, "static", registry=ModelRegistry())


class TestScaleEvent:
    def test_to_json_dict_round_trips(self):
        from repro.serve import ScaleEvent

        event = ScaleEvent(
            time_s=1.25, action="scale_up", from_replicas=2,
            to_replicas=3, reason="queue_pressure=2.10",
        )
        assert ScaleEvent(**event.to_json_dict()) == event

    def test_json_dict_survives_serialization(self):
        from repro.serve import ScaleEvent

        event = ScaleEvent(
            time_s=0.5, action="scale_down", from_replicas=4,
            to_replicas=3, reason="idle",
        )
        wire = json.loads(json.dumps(event.to_json_dict()))
        assert ScaleEvent(**wire) == event
