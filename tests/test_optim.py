"""Optimisers, schedules and gumbel softmax."""

import numpy as np
import pytest

from repro.nn import Parameter
from repro.optim import (
    Adam,
    ConstantSchedule,
    CosineDecay,
    ExponentialDecay,
    SGD,
    StepDecay,
    gumbel_softmax,
    sample_gumbel,
)
from repro.tensor import Tensor


def quadratic_step(opt, p, target):
    """One optimisation step on 0.5*||p - target||^2."""
    opt.zero_grad()
    p.grad = (p.data - target).astype(p.data.dtype)
    opt.step()


class TestSGD:
    def test_converges_on_quadratic(self):
        p = Parameter(np.array([5.0, -3.0], dtype=np.float32))
        opt = SGD([p], lr=0.1, momentum=0.9)
        target = np.array([1.0, 1.0], dtype=np.float32)
        for _ in range(200):
            quadratic_step(opt, p, target)
        assert np.allclose(p.data, target, atol=1e-3)

    def test_momentum_accelerates(self):
        def run(momentum):
            p = Parameter(np.array([10.0], dtype=np.float32))
            opt = SGD([p], lr=0.01, momentum=momentum)
            for _ in range(50):
                quadratic_step(opt, p, np.zeros(1, dtype=np.float32))
            return abs(float(p.data[0]))

        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks_weights(self):
        p = Parameter(np.array([1.0], dtype=np.float32))
        opt = SGD([p], lr=0.1, momentum=0.0, weight_decay=0.1)
        opt.zero_grad()
        p.grad = np.zeros(1, dtype=np.float32)
        opt.step()
        assert float(p.data[0]) < 1.0

    def test_skips_params_without_grad(self):
        p = Parameter(np.ones(2, dtype=np.float32))
        SGD([p], lr=0.1).step()
        assert np.allclose(p.data, 1.0)

    def test_validates_hyperparams(self):
        p = Parameter(np.ones(1, dtype=np.float32))
        with pytest.raises(ValueError):
            SGD([p], lr=-1.0)
        with pytest.raises(ValueError):
            SGD([p], lr=0.1, momentum=1.5)
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Parameter(np.array([5.0, -3.0], dtype=np.float32))
        opt = Adam([p], lr=0.1)
        target = np.array([1.0, 1.0], dtype=np.float32)
        for _ in range(300):
            quadratic_step(opt, p, target)
        assert np.allclose(p.data, target, atol=1e-2)

    def test_first_step_magnitude_is_lr(self):
        # With bias correction, |first update| ~= lr regardless of grad scale.
        p = Parameter(np.array([0.0], dtype=np.float32))
        opt = Adam([p], lr=0.01)
        opt.zero_grad()
        p.grad = np.array([1000.0], dtype=np.float32)
        opt.step()
        assert abs(float(p.data[0])) == pytest.approx(0.01, rel=1e-3)

    def test_validates_betas(self):
        p = Parameter(np.ones(1, dtype=np.float32))
        with pytest.raises(ValueError):
            Adam([p], betas=(1.1, 0.9))


class TestSchedules:
    def test_cosine_endpoints(self):
        sched = CosineDecay(1.0, 100)
        assert sched(0) == pytest.approx(1.0)
        assert sched(100) == pytest.approx(0.0, abs=1e-9)
        assert sched(50) == pytest.approx(0.5)

    def test_cosine_monotone_decreasing(self):
        sched = CosineDecay(0.1, 50)
        values = [sched(i) for i in range(51)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_step_decay(self):
        sched = StepDecay(1.0, step_size=10, gamma=0.1)
        assert sched(9) == pytest.approx(1.0)
        assert sched(10) == pytest.approx(0.1)
        assert sched(25) == pytest.approx(0.01)

    def test_exponential_decay_paper_temperature(self):
        sched = ExponentialDecay(3.0, 0.94)
        assert sched(0) == pytest.approx(3.0)
        assert sched(1) == pytest.approx(2.82)
        assert sched(1000) == pytest.approx(0.0, abs=1e-20)  # floor

    def test_constant(self):
        assert ConstantSchedule(0.3)(12345) == 0.3

    def test_validation(self):
        with pytest.raises(ValueError):
            CosineDecay(1.0, 0)
        with pytest.raises(ValueError):
            StepDecay(1.0, 0)


class TestGumbel:
    def test_sample_shape(self):
        assert sample_gumbel((3, 4)).shape == (3, 4)

    def test_soft_sums_to_one(self):
        logits = Tensor(np.zeros((5, 4), dtype=np.float32), requires_grad=True)
        y = gumbel_softmax(logits, temperature=1.0)
        assert np.allclose(y.data.sum(axis=-1), 1.0, atol=1e-5)

    def test_hard_is_one_hot_with_soft_gradient(self):
        logits = Tensor(np.zeros((6,), dtype=np.float32), requires_grad=True)
        y = gumbel_softmax(logits, temperature=1.0, hard=True)
        assert sorted(np.unique(y.data)) == [0.0, 1.0]
        assert y.data.sum() == 1.0
        y.sum().backward()
        assert logits.grad is not None

    def test_low_temperature_sharpens(self):
        logits = Tensor(np.array([2.0, 0.0, 0.0], dtype=np.float32))
        rng = np.random.default_rng(0)
        hot = gumbel_softmax(logits, 0.1, rng=rng)
        assert hot.data.max() > 0.9

    def test_biased_logits_win_more_often(self):
        logits = Tensor(np.array([3.0, 0.0], dtype=np.float32))
        rng = np.random.default_rng(0)
        wins = sum(
            gumbel_softmax(logits, 1.0, rng=rng).data.argmax() == 0
            for _ in range(200)
        )
        assert wins > 140

    def test_invalid_temperature(self):
        with pytest.raises(ValueError):
            gumbel_softmax(Tensor(np.zeros(3)), temperature=0.0)
