"""Experiment harness: every table/figure runs at smoke scale with the
expected row structure.  These are the repo's regression net for the
paper-reproduction claims (quality is asserted at default scale in the
benchmark harness, not here)."""

import pytest

from repro.experiments import ALL_EXPERIMENTS, SCALES, get_scale
from repro.experiments.common import ExperimentResult, Scale, format_table


class TestCommon:
    def test_scales_registered(self):
        assert set(SCALES) == {"smoke", "default", "full"}

    def test_get_scale_by_name_and_passthrough(self):
        assert get_scale("smoke").name == "smoke"
        custom = Scale("c", 10, 10, 8, 3, 1, 8, 0.25, 1, 2)
        assert get_scale(custom) is custom

    def test_get_scale_unknown(self):
        with pytest.raises(ValueError):
            get_scale("gigantic")

    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "xx"}, {"a": 222, "c": 3.5}]
        text = format_table(rows)
        assert "a" in text and "c" in text
        assert len(text.splitlines()) == 4

    def test_result_columns(self):
        res = ExperimentResult("x", "t")
        res.add_row(a=1)
        res.add_row(a=2)
        assert res.column("a") == [1, 2]


@pytest.mark.slow
class TestSmokeRuns:
    """One smoke run per experiment; wall time dominated by training."""

    @pytest.fixture(scope="class")
    def results(self):
        return {}

    def _run(self, results, name):
        if name not in results:
            results[name] = ALL_EXPERIMENTS[name](scale="smoke")
        return results[name]

    def test_table1_structure(self, results):
        res = self._run(results, "table1")
        assert len(res.rows) == 9  # 5 + 4 bit-width rows
        for row in res.rows:
            assert {"acc_sbm", "acc_sp", "acc_adabits", "acc_cdt"} <= set(row)

    def test_table2_covers_both_datasets(self, results):
        res = self._run(results, "table2")
        assert {r["dataset"] for r in res.rows} == {"cifar10", "cifar100"}

    def test_table3_is_deeper_table2(self, results):
        res = self._run(results, "table3")
        assert res.experiment == "table3"
        assert "n=2" in res.notes

    def test_table4_bit_pairs(self, results):
        res = self._run(results, "table4")
        bits = {r["bits"] for r in res.rows}
        assert "W2A2" in bits and "W32A2" in bits

    def test_fig2_reports_kl_and_accuracy(self, results):
        res = self._run(results, "fig2")
        methods = {r["method"] for r in res.rows}
        assert methods == {"vanilla", "cdt"}
        for row in res.rows:
            assert row["kl_4bit_to_32bit"] >= 0

    def test_fig4_three_methods(self, results):
        res = self._run(results, "fig4")
        assert {r["method"] for r in res.rows} == {"spnas", "fpnas", "lpnas"}
        assert all(r["flops"] > 0 for r in res.rows)

    def test_fig5_reductions_positive_overall(self, results):
        res = self._run(results, "fig5")
        assert any(r["reduction_pct"] > 0 for r in res.rows)
        baselines = {r["baseline"] for r in res.rows}
        assert "eyeriss" in baselines and "dnnbuilder" in baselines

    def test_fig6_reports_edp_and_accuracy(self, results):
        res = self._run(results, "fig6")
        for row in res.rows:
            assert row["edp_instantnet"] > 0
            assert 0 <= row["acc_instantnet"] <= 100

    def test_fig7_fps_gain(self, results):
        res = self._run(results, "fig7")
        assert all(r["fps_instantnet"] > 0 for r in res.rows)
        assert all(r["fps_gain"] > 0 for r in res.rows)
