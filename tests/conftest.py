"""Shared fixtures: deterministic seeding for every test."""

import numpy as np
import pytest

from repro import rng as rng_mod


@pytest.fixture(autouse=True)
def _seed_everything():
    """Reset the library RNG before each test for full determinism."""
    rng_mod.set_seed(1234)
    yield


@pytest.fixture
def rng():
    """A NumPy generator independent of the library's global stream."""
    return np.random.default_rng(99)
