"""Layer semantics: conv, linear, batch norm, switchable BN, dropout."""

import numpy as np
import pytest

from repro import rng as rng_mod
from repro.nn import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    ReLU,
    ReLU6,
    SwitchableBatchNorm2d,
)
from repro.tensor import Tensor


def x4(n=2, c=3, h=8, w=8):
    return Tensor(rng_mod.get_rng().normal(size=(n, c, h, w)).astype(np.float32))


class TestConvLinear:
    def test_conv_shape(self):
        conv = Conv2d(3, 8, 3, stride=2, padding=1)
        assert conv(x4()).shape == (2, 8, 4, 4)

    def test_conv_bias_shape(self):
        conv = Conv2d(3, 8, 1, bias=True)
        assert conv.bias.shape == (8,)

    def test_conv_rejects_bad_groups(self):
        with pytest.raises(ValueError, match="groups"):
            Conv2d(3, 8, 3, groups=2)

    def test_conv_flops(self):
        conv = Conv2d(3, 8, 3, padding=1)
        assert conv.flops(8) == 8 * 8 * 8 * 3 * 9

    def test_linear_shape(self):
        linear = Linear(10, 5)
        out = linear(Tensor(np.zeros((4, 10), dtype=np.float32)))
        assert out.shape == (4, 5)

    def test_linear_no_bias(self):
        assert Linear(4, 2, bias=False).bias is None

    def test_init_scale_reasonable(self):
        conv = Conv2d(16, 16, 3)
        std = conv.weight.data.std()
        expected = np.sqrt(2.0 / (16 * 9))
        assert 0.5 * expected < std < 2.0 * expected


class TestBatchNorm:
    def test_normalizes_in_training(self):
        bn = BatchNorm2d(3)
        x = x4(n=8)
        out = bn(x)
        assert abs(float(out.data.mean())) < 1e-5
        assert float(out.data.var()) == pytest.approx(1.0, abs=0.05)

    def test_running_stats_updated_in_training_only(self):
        bn = BatchNorm2d(3)
        before = bn.running_mean.copy()
        bn(x4())
        assert not np.allclose(bn.running_mean, before)
        bn.eval()
        frozen = bn.running_mean.copy()
        bn(x4())
        assert np.allclose(bn.running_mean, frozen)

    def test_eval_uses_running_stats(self):
        bn = BatchNorm2d(3)
        for _ in range(50):
            bn(x4(n=16))
        bn.eval()
        out = bn(x4(n=16))
        assert abs(float(out.data.mean())) < 0.3


class TestSwitchableBN:
    def test_independent_statistics_per_bitwidth(self):
        sbn = SwitchableBatchNorm2d(3, [4, 8, 32])
        sbn.set_bitwidth(4)
        sbn(x4())
        # Only the 4-bit BN should have moved.
        assert not np.allclose(sbn.bns[0].running_mean, 0.0)
        assert np.allclose(sbn.bns[1].running_mean, 0.0)
        assert np.allclose(sbn.bns[2].running_mean, 0.0)

    def test_active_bitwidth(self):
        sbn = SwitchableBatchNorm2d(3, [4, 8])
        sbn.set_bitwidth(8)
        assert sbn.active_bitwidth == 8

    def test_rejects_unknown_bitwidth(self):
        sbn = SwitchableBatchNorm2d(3, [4, 8])
        with pytest.raises(ValueError, match="candidate"):
            sbn.set_bitwidth(16)

    def test_rejects_empty_candidates(self):
        with pytest.raises(ValueError):
            SwitchableBatchNorm2d(3, [])

    def test_tuple_bit_candidates(self):
        sbn = SwitchableBatchNorm2d(3, [(2, 2), (32, 32)])
        sbn.set_bitwidth((2, 2))
        assert sbn.active_bitwidth == (2, 2)


class TestActivationsPoolsMisc:
    def test_relu6_bounds(self):
        out = ReLU6()(Tensor(np.array([-5.0, 3.0, 50.0], dtype=np.float32)))
        assert np.allclose(out.data, [0.0, 3.0, 6.0])

    def test_relu(self):
        out = ReLU()(Tensor(np.array([-1.0, 2.0], dtype=np.float32)))
        assert np.allclose(out.data, [0.0, 2.0])

    def test_pools(self):
        assert MaxPool2d(2)(x4()).shape == (2, 3, 4, 4)
        assert AvgPool2d(2)(x4()).shape == (2, 3, 4, 4)
        assert GlobalAvgPool2d()(x4()).shape == (2, 3, 1, 1)

    def test_flatten_identity(self):
        assert Flatten()(x4()).shape == (2, 3 * 64)
        x = x4()
        assert Identity()(x) is x

    def test_dropout_inactive_in_eval(self):
        drop = Dropout(0.5)
        drop.eval()
        x = x4()
        assert np.allclose(drop(x).data, x.data)

    def test_dropout_scales_in_train(self):
        drop = Dropout(0.5)
        x = Tensor(np.ones((1000,), dtype=np.float32))
        out = drop(x)
        kept = out.data[out.data > 0]
        assert np.allclose(kept, 2.0)
        assert 0.3 < (out.data > 0).mean() < 0.7

    def test_dropout_validates_p(self):
        with pytest.raises(ValueError):
            Dropout(1.5)
