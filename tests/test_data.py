"""Synthetic datasets, loaders, splits."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import rng as rng_mod
from repro.data import (
    ArrayDataset,
    DataLoader,
    Subset,
    augment_batch,
    cifar10_like,
    cifar100_like,
    imagenet_like,
    make_synthetic,
    split_dataset,
    tinyimagenet_like,
)
from repro.data.synthetic import SyntheticSpec, _make_prototypes


class TestArrayDataset:
    def test_len_getitem(self):
        ds = ArrayDataset(np.zeros((5, 3, 4, 4)), np.arange(5))
        assert len(ds) == 5
        img, label = ds[2]
        assert img.shape == (3, 4, 4) and label == 2

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((5, 1, 2, 2)), np.zeros(4))

    def test_num_classes(self):
        ds = ArrayDataset(np.zeros((4, 1, 2, 2)), np.array([0, 2, 1, 2]))
        assert ds.num_classes == 3


class TestSynthetic:
    def test_deterministic_given_seed(self):
        rng_mod.set_seed(7)
        a, _ = cifar10_like(num_train=32, num_test=8)
        rng_mod.set_seed(7)
        b, _ = cifar10_like(num_train=32, num_test=8)
        assert np.allclose(a.images, b.images)
        assert np.array_equal(a.labels, b.labels)

    def test_train_test_share_prototypes_differ_in_noise(self):
        spec = SyntheticSpec("x", 4, 12)
        train = make_synthetic(spec, 64, "train")
        test = make_synthetic(spec, 64, "test")
        assert not np.allclose(train.images[:8], test.images[:8])
        # Same class prototypes: per-class means correlate across splits.
        proto = _make_prototypes(spec)
        assert proto.shape == (4, 3, 12, 12)

    def test_all_classes_present(self):
        train, _ = cifar10_like(num_train=500)
        assert set(np.unique(train.labels)) == set(range(10))

    def test_factories_shapes(self):
        for factory, classes in [
            (cifar10_like, 10),
            (lambda **kw: cifar100_like(num_classes=15, **kw), 15),
            (lambda **kw: tinyimagenet_like(num_classes=6, **kw), 6),
            (lambda **kw: imagenet_like(num_classes=7, **kw), 7),
        ]:
            train, test = factory(num_train=40, num_test=10)
            assert train.images.dtype == np.float32
            assert int(train.labels.max()) < classes

    def test_difficulty_raises_noise(self):
        spec_easy = SyntheticSpec("d", 4, 12, difficulty=0.5)
        spec_hard = SyntheticSpec("d", 4, 12, difficulty=3.0)
        easy = make_synthetic(spec_easy, 64, "train")
        hard = make_synthetic(spec_hard, 64, "train")
        assert hard.images.std() > easy.images.std()


class TestSplit:
    def test_disjoint_and_complete(self):
        ds = ArrayDataset(np.zeros((100, 1, 2, 2)), np.zeros(100))
        a, b = split_dataset(ds, 0.5)
        ia, ib = set(a.indices.tolist()), set(b.indices.tolist())
        assert not (ia & ib)
        assert ia | ib == set(range(100))

    def test_fraction(self):
        ds = ArrayDataset(np.zeros((10, 1, 2, 2)), np.zeros(10))
        a, b = split_dataset(ds, 0.3)
        assert len(a) == 3 and len(b) == 7

    def test_invalid_fraction(self):
        ds = ArrayDataset(np.zeros((4, 1, 2, 2)), np.zeros(4))
        with pytest.raises(ValueError):
            split_dataset(ds, 1.0)

    def test_subset_indexing(self):
        ds = ArrayDataset(np.arange(12).reshape(3, 1, 2, 2), np.array([5, 6, 7]))
        sub = Subset(ds, [2, 0])
        assert sub[0][1] == 7 and sub[1][1] == 5


class TestLoader:
    def _ds(self, n=20):
        return ArrayDataset(
            np.random.default_rng(0).normal(size=(n, 3, 8, 8)).astype(np.float32),
            np.arange(n) % 4,
        )

    def test_batch_shapes(self):
        loader = DataLoader(self._ds(), batch_size=8, shuffle=False)
        batches = list(loader)
        assert batches[0][0].shape == (8, 3, 8, 8)
        assert [len(b[1]) for b in batches] == [8, 8, 4]

    def test_drop_last(self):
        loader = DataLoader(self._ds(), batch_size=8, drop_last=True)
        assert len(loader) == 2
        assert sum(1 for _ in loader) == 2

    def test_shuffle_changes_order_across_epochs(self):
        loader = DataLoader(self._ds(), batch_size=20, shuffle=True)
        first = next(iter(loader))[1].copy()
        second = next(iter(loader))[1].copy()
        assert not np.array_equal(first, second)

    def test_no_shuffle_is_stable(self):
        loader = DataLoader(self._ds(), batch_size=20, shuffle=False)
        a = next(iter(loader))[1]
        b = next(iter(loader))[1]
        assert np.array_equal(a, b)

    def test_augment_keeps_shape(self):
        images = np.random.default_rng(0).normal(size=(4, 3, 8, 8)).astype(np.float32)
        out = augment_batch(images, np.random.default_rng(1))
        assert out.shape == images.shape

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(self._ds(), batch_size=0)


@settings(max_examples=20, deadline=None)
@given(n=st.integers(2, 60), frac=st.floats(0.1, 0.9))
def test_property_split_partitions(n, frac):
    ds = ArrayDataset(np.zeros((n, 1, 2, 2)), np.zeros(n))
    a, b = split_dataset(ds, frac)
    assert len(a) + len(b) == n
    assert set(a.indices) | set(b.indices) == set(range(n))
    assert not (set(a.indices) & set(b.indices))
