"""Checkpoint I/O + model registry: rebuild must be bit-for-bit."""

import os

import numpy as np
import pytest

from repro.serve import (
    ModelRegistry,
    SPNetConfig,
    build_sp_net,
    load_checkpoint,
    load_state_arrays,
    make_controller,
    materialize_engine,
    save_checkpoint,
)
from repro.tensor import Tensor, no_grad


def small_config(**overrides):
    base = dict(
        model="resnet8", bit_widths=(4, 8, 16), num_classes=3,
        width_mult=0.25, image_size=8,
    )
    base.update(overrides)
    return SPNetConfig(**base)


def outputs_at_every_bit(sp_net, x):
    sp_net.eval()
    with no_grad():
        return {bits: sp_net(Tensor(x), bits=bits).data.copy()
                for bits in sp_net.bit_widths}


class TestSPNetConfig:
    def test_json_round_trip_preserves_bit_pairs(self):
        cfg = small_config(bit_widths=(4, (2, 32), 8))
        again = SPNetConfig.from_json_dict(cfg.to_json_dict())
        assert again == cfg
        assert again.bit_widths == (4, (2, 32), 8)

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown model"):
            small_config(model="transformer9000")

    def test_list_bit_widths_normalised(self):
        cfg = SPNetConfig(
            model="resnet8", bit_widths=[[2, 32], 8], num_classes=3,
        )
        assert cfg.bit_widths == ((2, 32), 8)


class TestCheckpointRoundTrip:
    def test_bit_for_bit_at_every_bitwidth(self, tmp_path):
        cfg = small_config(bit_widths=(4, (2, 32), 8, 16))
        sp_net = build_sp_net(cfg)
        x = np.random.default_rng(0).normal(size=(2, 3, 8, 8)).astype(
            np.float32
        )
        before = outputs_at_every_bit(sp_net, x)

        npz_path, json_path = save_checkpoint(
            sp_net, cfg, str(tmp_path / "ckpt")
        )
        assert os.path.exists(npz_path) and os.path.exists(json_path)

        loaded, loaded_cfg = load_checkpoint(str(tmp_path / "ckpt"))
        assert loaded_cfg == cfg
        after = outputs_at_every_bit(loaded, x)
        for bits in sp_net.bit_widths:
            np.testing.assert_array_equal(before[bits], after[bits])

    def test_either_suffix_addresses_checkpoint(self, tmp_path):
        cfg = small_config()
        sp_net = build_sp_net(cfg)
        save_checkpoint(sp_net, cfg, str(tmp_path / "m.npz"))
        loaded, _ = load_checkpoint(str(tmp_path / "m.json"))
        assert loaded.bit_widths == sp_net.bit_widths

    def test_bad_schema_rejected(self, tmp_path):
        _, json_path = _saved_checkpoint(tmp_path)
        _edit_meta(json_path, schema_version=999)
        with pytest.raises(ValueError, match="schema"):
            load_checkpoint(str(tmp_path / "m"))


def _saved_checkpoint(tmp_path):
    cfg = small_config()
    sp_net = build_sp_net(cfg)
    return save_checkpoint(sp_net, cfg, str(tmp_path / "m"))


def _edit_meta(json_path, **changes):
    import json as json_mod

    with open(json_path) as handle:
        meta = json_mod.load(handle)
    for key, value in changes.items():
        if value is None:
            meta.pop(key, None)
        else:
            meta[key] = value
    with open(json_path, "w") as handle:
        json_mod.dump(meta, handle)


class TestSchemaVersioning:
    """schema_version gating: current + v1 load, future fails, legacy warns."""

    def test_current_version_written_and_loads_silently(
        self, tmp_path, recwarn
    ):
        import json as json_mod

        from repro.serve import CHECKPOINT_SCHEMA_VERSION

        _, json_path = _saved_checkpoint(tmp_path)
        with open(json_path) as handle:
            meta = json_mod.load(handle)
        assert meta["schema_version"] == CHECKPOINT_SCHEMA_VERSION
        load_checkpoint(str(tmp_path / "m"))
        assert not [w for w in recwarn if "schema" in str(w.message)]

    def test_v1_schema_key_still_loads(self, tmp_path):
        _, json_path = _saved_checkpoint(tmp_path)
        _edit_meta(json_path, schema_version=None, schema=1)
        loaded, _ = load_checkpoint(str(tmp_path / "m"))
        assert loaded.bit_widths == (4, 8, 16)

    def test_future_version_raises_checkpoint_version_error(self, tmp_path):
        from repro.serve import CheckpointVersionError

        _, json_path = _saved_checkpoint(tmp_path)
        _edit_meta(json_path, schema_version=99)
        with pytest.raises(CheckpointVersionError, match="schema_version 99"):
            load_checkpoint(str(tmp_path / "m"))

    def test_unversioned_checkpoint_warns_but_loads(self, tmp_path):
        _, json_path = _saved_checkpoint(tmp_path)
        _edit_meta(json_path, schema_version=None, schema=None)
        with pytest.warns(UserWarning, match="no schema_version"):
            loaded, _ = load_checkpoint(str(tmp_path / "m"))
        assert loaded.bit_widths == (4, 8, 16)


class TestModelRegistry:
    def test_register_get_names(self):
        reg = ModelRegistry()
        cfg = small_config()
        sp_net = build_sp_net(cfg)
        reg.register("prod", sp_net, cfg)
        assert reg.get("prod") is sp_net
        assert reg.config("prod") == cfg
        assert reg.names() == ["prod"]
        assert "prod" in reg and len(reg) == 1

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            ModelRegistry().get("nope")

    def test_invalid_name_rejected(self):
        cfg = small_config()
        sp_net = build_sp_net(cfg)
        for bad in ("a/b", "", ".", "..", "model.json", "weights.npz"):
            with pytest.raises(ValueError):
                ModelRegistry().register(bad, sp_net, cfg)

    def test_save_requires_root(self):
        reg = ModelRegistry()
        cfg = small_config()
        reg.register("m", build_sp_net(cfg), cfg)
        with pytest.raises(ValueError):
            reg.save("m")

    def test_incomplete_checkpoint_not_listed(self, tmp_path):
        """A stray .json without its .npz must not be claimed loadable."""
        root = tmp_path / "models"
        root.mkdir()
        (root / "orphan.json").write_text("{}")
        reg = ModelRegistry(str(root))
        assert reg.names() == []
        assert "orphan" not in reg
        with pytest.raises(KeyError):
            reg.get("orphan")

    def test_persist_evict_reload_bit_for_bit(self, tmp_path):
        cfg = small_config()
        sp_net = build_sp_net(cfg)
        x = np.random.default_rng(1).normal(size=(2, 3, 8, 8)).astype(
            np.float32
        )
        before = outputs_at_every_bit(sp_net, x)

        reg = ModelRegistry(str(tmp_path / "models"))
        reg.register("prod", sp_net, cfg, persist=True)
        assert reg.evict("prod")
        assert not reg.evict("prod")
        assert reg.names() == ["prod"]  # checkpoint still listed

        reloaded = reg.get("prod")
        assert reloaded is not sp_net
        after = outputs_at_every_bit(reloaded, x)
        for bits in sp_net.bit_widths:
            np.testing.assert_array_equal(before[bits], after[bits])


class TestMmapLoading:
    """mmap=True must be a pure read-path optimisation: same arrays."""

    def test_mmap_arrays_equal_eager_arrays(self, tmp_path):
        npz_path, _ = _saved_checkpoint(tmp_path)
        eager = load_state_arrays(npz_path)
        mapped = load_state_arrays(npz_path, mmap=True)
        assert set(eager) == set(mapped)
        for name in eager:
            assert eager[name].dtype == mapped[name].dtype
            np.testing.assert_array_equal(eager[name], mapped[name])

    def test_mmap_views_are_read_only(self, tmp_path):
        npz_path, _ = _saved_checkpoint(tmp_path)
        mapped = load_state_arrays(npz_path, mmap=True)
        array = next(iter(mapped.values()))
        assert not array.flags.writeable
        with pytest.raises((ValueError, RuntimeError)):
            array[...] = 0

    def test_mmap_checkpoint_rebuilds_bit_for_bit(self, tmp_path):
        cfg = small_config()
        sp_net = build_sp_net(cfg)
        x = np.random.default_rng(2).normal(size=(2, 3, 8, 8)).astype(
            np.float32
        )
        before = outputs_at_every_bit(sp_net, x)
        save_checkpoint(sp_net, cfg, str(tmp_path / "m"))
        loaded, _ = load_checkpoint(str(tmp_path / "m"), mmap=True)
        after = outputs_at_every_bit(loaded, x)
        for bits in sp_net.bit_widths:
            np.testing.assert_array_equal(before[bits], after[bits])


class TestMaterializeEngine:
    """checkpoint -> engine: the path shared by sim fleet and workers."""

    def _latency_model(self):
        from repro.serve.engine import BitLatencyModel

        return BitLatencyModel(
            {4: 0.001, 8: 0.002, 16: 0.004}, batch_overhead_s=0.004
        )

    def test_engine_serves_checkpointed_weights(self, tmp_path):
        cfg = small_config()
        sp_net = build_sp_net(cfg)
        x = np.random.default_rng(3).normal(size=(1, 3, 8, 8)).astype(
            np.float32
        )
        expected = outputs_at_every_bit(sp_net, x)
        npz_path, _ = save_checkpoint(sp_net, cfg, str(tmp_path / "m"))
        engine = materialize_engine(
            npz_path, "static", self._latency_model(),
            max_batch=4, mmap=True,
        )
        got = outputs_at_every_bit(engine.sp_net, x)
        for bits in sp_net.bit_widths:
            np.testing.assert_array_equal(expected[bits], got[bits])

    def test_materialize_wires_policy_and_knobs(self, tmp_path):
        npz_path, _ = _saved_checkpoint(tmp_path)
        engine = materialize_engine(
            npz_path, "slo", self._latency_model(),
            max_batch=4, slo_s=0.05, batch_timeout_s=0.01,
        )
        assert engine.max_batch == 4
        assert engine.batch_timeout_s == 0.01

    def test_slo_policy_requires_slo_s(self):
        with pytest.raises(ValueError, match="slo"):
            make_controller("slo")
