"""Losses and straight-through estimators."""

import numpy as np
import pytest

from repro.tensor import (
    Tensor,
    accuracy,
    check_gradients,
    cross_entropy,
    kl_div_loss,
    mse_loss,
    round_ste,
    softmax,
    straight_through,
)


def t(arr):
    return Tensor(np.asarray(arr, dtype=np.float64), requires_grad=True)


class TestCrossEntropy:
    def test_matches_manual_computation(self, rng):
        logits = rng.normal(size=(6, 4))
        labels = rng.integers(0, 4, size=6)
        loss = cross_entropy(Tensor(logits), labels)
        probs = np.exp(logits - logits.max(1, keepdims=True))
        probs /= probs.sum(1, keepdims=True)
        expected = -np.log(probs[np.arange(6), labels]).mean()
        assert loss.item() == pytest.approx(expected, rel=1e-9)

    def test_gradcheck(self, rng):
        logits = t(rng.normal(size=(5, 3)))
        labels = rng.integers(0, 3, size=5)
        check_gradients(lambda l: cross_entropy(l, labels), [logits])

    def test_gradient_is_softmax_minus_onehot(self, rng):
        logits = t(rng.normal(size=(4, 3)))
        labels = np.array([0, 1, 2, 0])
        cross_entropy(logits, labels).backward()
        p = softmax(Tensor(logits.data)).numpy()
        onehot = np.eye(3)[labels]
        assert np.allclose(logits.grad, (p - onehot) / 4, atol=1e-7)

    def test_perfect_prediction_low_loss(self):
        logits = Tensor(np.array([[100.0, 0.0], [0.0, 100.0]]))
        loss = cross_entropy(logits, np.array([0, 1]))
        assert loss.item() < 1e-6

    def test_accepts_tensor_labels(self, rng):
        logits = Tensor(rng.normal(size=(3, 4)))
        labels = Tensor(np.array([0, 1, 2]))
        assert np.isfinite(cross_entropy(logits, labels).item())


class TestMSE:
    def test_value(self):
        loss = mse_loss(Tensor(np.array([1.0, 2.0])), Tensor(np.array([0.0, 0.0])))
        assert loss.item() == pytest.approx(2.5)

    def test_gradcheck(self, rng):
        a = t(rng.normal(size=(3, 4)))
        b = Tensor(rng.normal(size=(3, 4)))
        check_gradients(lambda a: mse_loss(a, b), [a])

    def test_detached_target_gets_no_gradient(self, rng):
        student = t(rng.normal(size=(2, 3)))
        teacher = t(rng.normal(size=(2, 3)))
        mse_loss(student, teacher.detach()).backward()
        assert teacher.grad is None
        assert student.grad is not None


class TestKL:
    def test_zero_for_identical(self, rng):
        logits = Tensor(rng.normal(size=(3, 5)))
        assert kl_div_loss(logits, logits).item() == pytest.approx(0.0, abs=1e-8)

    def test_positive(self, rng):
        a = Tensor(rng.normal(size=(3, 5)))
        b = Tensor(rng.normal(size=(3, 5)))
        assert kl_div_loss(a, b).item() > 0

    def test_gradcheck(self, rng):
        s = t(rng.normal(size=(3, 4)))
        te = Tensor(rng.normal(size=(3, 4)))
        check_gradients(lambda s: kl_div_loss(s, te, temperature=3.0), [s])


class TestAccuracy:
    def test_perfect(self):
        logits = Tensor(np.array([[1.0, 0.0], [0.0, 1.0]]))
        assert accuracy(logits, np.array([0, 1])) == 1.0

    def test_half(self):
        logits = Tensor(np.array([[1.0, 0.0], [1.0, 0.0]]))
        assert accuracy(logits, np.array([0, 1])) == 0.5


class TestSTE:
    def test_forward_is_quantized(self):
        x = Tensor(np.array([0.1, 0.9]), requires_grad=True)
        out = straight_through(x, np.array([0.0, 1.0]))
        assert np.allclose(out.data, [0.0, 1.0])

    def test_backward_is_identity(self):
        x = Tensor(np.array([0.1, 0.9]), requires_grad=True)
        straight_through(x, np.array([0.0, 1.0])).backward(np.array([2.0, 3.0]))
        assert np.allclose(x.grad, [2.0, 3.0])

    def test_clip_mask_zeroes_saturated(self):
        x = Tensor(np.array([-1.0, 0.5, 7.0]), requires_grad=True)
        out = straight_through(x, np.clip(x.data, 0, 6), clip_low=0.0, clip_high=6.0)
        out.backward(np.ones(3))
        assert np.allclose(x.grad, [0.0, 1.0, 0.0])

    def test_shape_mismatch_rejected(self):
        x = Tensor(np.zeros(3), requires_grad=True)
        with pytest.raises(ValueError, match="shape"):
            straight_through(x, np.zeros(4))

    def test_round_ste(self):
        x = Tensor(np.array([0.4, 1.6]), requires_grad=True)
        out = round_ste(x)
        assert np.allclose(out.data, [0.0, 2.0])
        out.backward(np.ones(2))
        assert np.allclose(x.grad, [1.0, 1.0])
