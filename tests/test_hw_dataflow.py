"""Dataflow space: tilings, sampling, perturbation, repair."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import (
    CANONICAL_ORDER,
    ConvWorkload,
    Dataflow,
    LevelTiling,
    design_space_size,
    eyeriss_like_asic,
    factorizations,
    perturb_dataflow,
    random_dataflow,
    repair_dataflow,
    zc706_like_fpga,
)

WL = ConvWorkload("t", 1, 16, 8, 14, 14, 3, 3)


class TestLevelTiling:
    def test_order_must_be_permutation(self):
        with pytest.raises(ValueError):
            LevelTiling(order=("N", "N", "C", "Y", "X", "R", "S"))

    def test_factor_defaults_to_one(self):
        lt = LevelTiling(order=CANONICAL_ORDER, tiles={"K": 4})
        assert lt.factor("K") == 4 and lt.factor("C") == 1

    def test_iterations(self):
        lt = LevelTiling(order=CANONICAL_ORDER, tiles={"K": 4, "C": 2})
        assert lt.iterations() == 8

    def test_rejects_zero_factor(self):
        with pytest.raises(ValueError):
            LevelTiling(order=CANONICAL_ORDER, tiles={"K": 0})


class TestDataflow:
    def test_coverage_product(self):
        flow = Dataflow(
            levels=(
                LevelTiling(CANONICAL_ORDER, {"K": 4}),
                LevelTiling(CANONICAL_ORDER, {"K": 2}),
                LevelTiling(CANONICAL_ORDER, {}),
                LevelTiling(CANONICAL_ORDER, {}),
            ),
            spatial={"K": 2},
        )
        assert flow.coverage("K") == 16

    def test_covers(self):
        flow = repair_dataflow(
            Dataflow(levels=tuple(LevelTiling(CANONICAL_ORDER, {})
                                  for _ in range(4))),
            WL, eyeriss_like_asic(),
        )
        assert flow.covers(WL)

    def test_spatial_validation(self):
        with pytest.raises(ValueError):
            Dataflow(levels=(LevelTiling(CANONICAL_ORDER, {}),) * 4,
                     spatial={"Z": 2})

    def test_describe_is_text(self):
        flow = random_dataflow(WL, eyeriss_like_asic())
        assert "spatial" in flow.describe()


class TestFactorizations:
    def test_products_cover_bound(self):
        for combo in factorizations(12, 3):
            assert np.prod(combo) >= 12

    def test_single_level(self):
        assert factorizations(7, 1) == [(7,)]

    def test_bound_one(self):
        assert factorizations(1, 3) == [(1, 1, 1)]

    def test_validation(self):
        with pytest.raises(ValueError):
            factorizations(0, 2)


class TestSamplingAndRepair:
    def test_random_dataflow_has_device_levels(self):
        dev = eyeriss_like_asic()
        flow = random_dataflow(WL, dev)
        assert len(flow.levels) == len(dev.hierarchy)

    def test_fpga_inner_orders_fixed(self):
        dev = zc706_like_fpga()
        rng = np.random.default_rng(0)
        for _ in range(10):
            flow = random_dataflow(WL, dev, rng)
            assert flow.levels[-1].order == CANONICAL_ORDER
            assert flow.levels[-2].order == CANONICAL_ORDER

    def test_repair_fixes_coverage(self):
        dev = eyeriss_like_asic()
        empty = Dataflow(levels=tuple(
            LevelTiling(CANONICAL_ORDER, {}) for _ in range(4)))
        fixed = repair_dataflow(empty, WL, dev)
        assert fixed.covers(WL)

    def test_repair_caps_spatial(self):
        dev = eyeriss_like_asic()
        flow = Dataflow(
            levels=tuple(LevelTiling(CANONICAL_ORDER, {}) for _ in range(4)),
            spatial={"K": 16, "Y": 14, "X": 14},  # 3136 >> 168 PEs
        )
        fixed = repair_dataflow(flow, WL, dev)
        assert fixed.spatial_size <= dev.num_pes

    def test_perturb_returns_valid_structure(self):
        dev = eyeriss_like_asic()
        rng = np.random.default_rng(0)
        flow = random_dataflow(WL, dev, rng)
        for _ in range(20):
            flow = perturb_dataflow(flow, WL, dev, k=2, rng=rng)
            assert len(flow.levels) == 4  # structure preserved

    def test_perturb_fpga_keeps_inner_orders(self):
        dev = zc706_like_fpga()
        rng = np.random.default_rng(0)
        flow = random_dataflow(WL, dev, rng)
        for _ in range(30):
            flow = perturb_dataflow(flow, WL, dev, rng=rng)
        assert flow.levels[-1].order == CANONICAL_ORDER

    def test_design_space_is_astronomical_for_alexnet(self):
        from repro.hardware import alexnet_workloads

        size = design_space_size(alexnet_workloads()[1])
        assert size > 1e27  # the paper's ">10^27" claim


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_random_flows_repairable_to_coverage(seed):
    dev = eyeriss_like_asic()
    rng = np.random.default_rng(seed)
    flow = repair_dataflow(random_dataflow(WL, dev, rng), WL, dev)
    assert flow.covers(WL)
    assert flow.spatial_size <= dev.num_pes
