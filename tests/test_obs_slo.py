"""Operational health plane: SLOs, alerts, health, profiler, diffing."""

import json

import pytest

from repro.api.config import AlertConfig, SLOConfig
from repro.obs.alerts import (
    AbsenceRule,
    BurnRateRule,
    ThresholdRule,
    alerts_to_jsonl,
    default_rules,
    evaluate_alerts,
    render_alerts,
)
from repro.obs.diff import (
    diff_reports,
    diff_run_dirs,
    load_run_report,
    render_diff,
)
from repro.obs.health import (
    DEGRADED,
    HEALTHY,
    UNHEALTHY,
    score_fleet,
    score_pool,
)
from repro.obs.profile import profile_events, render_profile
from repro.obs.slo import (
    SLOSpec,
    build_slo_report,
    evaluate_events,
    percentile,
    render_slo_report,
    slo_report_to_json,
    specs_from_config,
)
from repro.obs.tracer import Tracer


# ----------------------------------------------------------------------
# Pure-python percentile
# ----------------------------------------------------------------------
class TestPercentile:
    def test_single_sample_is_every_percentile_of_itself(self):
        for q in (0.0, 50.0, 95.0, 100.0):
            assert percentile([0.7], q) == 0.7

    def test_linear_interpolation_matches_numpy_default(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50.0) == 2.5
        assert percentile([0.0, 10.0], 95.0) == pytest.approx(9.5)
        assert percentile([3.0, 1.0, 2.0], 100.0) == 3.0

    def test_empty_and_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 50.0)
        with pytest.raises(ValueError, match="0, 100"):
            percentile([1.0], 101.0)


# ----------------------------------------------------------------------
# Spec validation
# ----------------------------------------------------------------------
class TestSLOSpec:
    def test_rejects_bad_fields(self):
        with pytest.raises(ValueError, match="signal"):
            SLOSpec(name="x", signal="jitter", target=0.95, threshold=1.0)
        with pytest.raises(ValueError, match="ratio"):
            SLOSpec(name="x", signal="latency", target=95.0, threshold=1.0)
        with pytest.raises(ValueError, match="positive threshold"):
            SLOSpec(name="x", signal="latency", target=0.95)
        with pytest.raises(ValueError, match="window_s"):
            SLOSpec(name="x", signal="availability", target=0.99,
                    window_s=-1.0)
        with pytest.raises(ValueError, match="long_window_factor"):
            SLOSpec(name="x", signal="availability", target=0.99,
                    long_window_factor=0)

    def test_availability_needs_no_threshold(self):
        spec = SLOSpec(name="avail", signal="availability", target=0.999)
        assert spec.threshold == 0.0

    def test_specs_from_config_resolution(self):
        config = SLOConfig()
        # No explicit latency target and no workload default: latency
        # objective is skipped, availability always present.
        names = [s.name for s in specs_from_config(config)]
        assert names == ["availability"]
        specs = specs_from_config(config, default_latency_target_s=0.025)
        assert [s.name for s in specs] == ["latency_p95", "availability"]
        assert specs[0].threshold == 0.025
        assert specs[0].target == pytest.approx(0.95)
        energetic = SLOConfig(energy_target_pj=2e6)
        names = [s.name for s in specs_from_config(energetic)]
        assert "energy_per_request" in names


# ----------------------------------------------------------------------
# Streaming-window evaluation edges
# ----------------------------------------------------------------------
def _complete(t, latency_s, request_id):
    return {
        "kind": "complete", "time_s": t, "request_id": request_id,
        "latency_s": latency_s, "arrival_s": t - latency_s,
        "start_s": t - latency_s, "finish_s": t, "replica": 0,
        "bits": 8,
    }


def _enqueue(t, request_id):
    return {
        "kind": "enqueue", "time_s": t, "request_id": request_id,
        "replica": 0, "queue_depth": 1,
    }


class TestEvaluateEvents:
    def test_empty_event_stream_yields_no_cells(self):
        spec = SLOSpec(name="avail", signal="availability", target=0.99)
        assert evaluate_events([], [spec]) == []

    def test_empty_windows_are_kept_with_none_sli(self):
        # Traffic only at the edges of the span: the two middle windows
        # must still appear, with total=0 and sli/burn None.
        events = [
            _enqueue(0.0, 0), _complete(0.0, 0.01, 0),
            _enqueue(1.0, 1), _complete(1.0, 0.01, 1),
        ]
        spec = SLOSpec(name="lat", signal="latency", target=0.95,
                       threshold=0.02, window_s=0.25)
        [result] = evaluate_events(events, [spec])
        [entry] = result["slos"]
        windows = entry["windows"]
        assert len(windows) == 4
        assert [w["total"] for w in windows] == [1, 0, 0, 1]
        assert windows[1]["sli"] is None
        assert windows[1]["burn_rate"] is None
        # Run-wide SLI ignores the gaps: both requests were good.
        assert entry["sli"] == 1.0
        assert entry["verdict"] == "pass"

    def test_window_longer_than_run_collapses_to_whole_span(self):
        events = [
            _enqueue(0.0, 0), _complete(0.1, 0.5, 0),   # bad (0.5 > 0.02)
            _enqueue(0.5, 1), _complete(1.0, 0.01, 1),  # good
        ]
        spec = SLOSpec(name="lat", signal="latency", target=0.95,
                       threshold=0.02, window_s=600.0)
        [result] = evaluate_events(events, [spec])
        [entry] = result["slos"]
        assert len(entry["windows"]) == 1
        assert entry["windows"][0]["total"] == 2
        # One window: fast burn == slow burn == run-wide burn.
        run_burn = (1.0 - 0.5) / (1.0 - 0.95)
        assert entry["burn"]["fast"] == pytest.approx(run_burn)
        assert entry["burn"]["slow"] == pytest.approx(run_burn)
        assert entry["verdict"] == "violated"

    def test_availability_counts_unfinished_admissions_as_bad(self):
        events = [
            _enqueue(0.0, 0), _complete(0.1, 0.01, 0),
            _enqueue(0.2, 1),   # admitted, never completes
        ]
        spec = SLOSpec(name="avail", signal="availability", target=0.5,
                       window_s=600.0)
        [result] = evaluate_events(events, [spec])
        [entry] = result["slos"]
        assert entry["good"] == 1 and entry["total"] == 2
        assert entry["sli"] == 0.5

    def test_verdict_events_emitted_only_when_traced(self):
        events = [_enqueue(0.0, 0), _complete(0.1, 0.01, 0)]
        spec = SLOSpec(name="avail", signal="availability", target=0.999)
        tracer = Tracer()
        evaluate_events(events, [spec], tracer=tracer)
        kinds = [e["kind"] for e in tracer.events]
        assert kinds == ["slo"]
        assert tracer.events[0]["slo"] == "avail"
        assert tracer.events[0]["verdict"] == "pass"

    def test_report_bytes_are_deterministic(self):
        events = [
            _enqueue(i * 0.1, i) for i in range(5)
        ] + [
            _complete(i * 0.1 + 0.05, 0.01 * (i + 1), i) for i in range(5)
        ]
        config = SLOConfig(latency_target_s=0.025)

        def build():
            return slo_report_to_json(build_slo_report(events, config))

        first, second = build(), build()
        assert first == second
        payload = json.loads(first)
        assert payload["verdict"] in ("pass", "violated")
        assert "SLO report" in render_slo_report(payload)


# ----------------------------------------------------------------------
# Alert rules + dedup
# ----------------------------------------------------------------------
def _window(start_s, end_s, total=10, burn_rate=0.0):
    return {
        "start_s": start_s, "end_s": end_s, "total": total,
        "good": total, "sli": 1.0 if total else None,
        "burn_rate": burn_rate if total else None,
    }


def _entry(windows, slow=0.0, consumed=0.0, sli=1.0):
    return {
        "spec": {"name": "latency_p95", "target": 0.95},
        "verdict": "pass",
        "sli": sli,
        "good": sum(w["total"] for w in windows),
        "total": sum(w["total"] for w in windows),
        "error_budget": {"consumed_fraction": consumed},
        "burn": {"fast": None, "slow": slow},
        "windows": windows,
    }


def _results(entry, **cell):
    return [{"cell": dict(cell), "slos": [entry]}]


class TestAlertRules:
    def test_fast_burn_pages_slow_burn_tickets(self):
        entry = _entry(
            [_window(0.0, 1.0, burn_rate=20.0), _window(1.0, 2.0)],
            slow=8.0,
        )
        firings = BurnRateRule().evaluate({}, entry)
        assert [f["severity"] for f in firings] == ["page", "ticket"]
        assert firings[0]["value"] == 20.0
        assert firings[1]["window"] == {"start_s": 0.0, "end_s": 2.0}

    def test_threshold_fires_only_on_exhausted_budget(self):
        quiet = _entry([_window(0.0, 1.0)], consumed=0.5)
        assert ThresholdRule().evaluate({}, quiet) == []
        loud = _entry([_window(0.0, 1.0)], consumed=2.0, sli=0.9)
        [firing] = ThresholdRule().evaluate({}, loud)
        assert firing["severity"] == "page"
        assert "budget exhausted" in firing["message"]

    def test_absence_is_silent_for_cells_with_no_traffic_at_all(self):
        empty = _entry([_window(0.0, 1.0, total=0)])
        assert AbsenceRule().evaluate({}, empty) == []
        gappy = _entry([
            _window(0.0, 1.0, total=5), _window(1.0, 2.0, total=0),
        ])
        [firing] = AbsenceRule().evaluate({}, gappy)
        assert firing["rule"] == "absence"
        assert firing["window"]["start_s"] == 1.0

    def test_adjacent_window_firings_collapse_to_one_episode(self):
        entry = _entry([
            _window(0.0, 1.0, burn_rate=20.0),
            _window(1.0, 2.0, burn_rate=30.0),
            _window(2.0, 3.0, burn_rate=1.0),
            _window(3.0, 4.0, burn_rate=25.0),
        ])
        firings = evaluate_alerts(
            _results(entry, scenario="bursty"), rules=[BurnRateRule()]
        )
        # Windows 0-2 merge (touching); window 3-4 stands alone.
        assert len(firings) == 2
        assert firings[0]["window"] == {"start_s": 0.0, "end_s": 2.0}
        assert firings[0]["value"] == 30.0   # worst value of the episode
        assert firings[1]["window"] == {"start_s": 3.0, "end_s": 4.0}
        assert all(f["cell"] == {"scenario": "bursty"} for f in firings)

    def test_alert_config_can_disable_dedup(self):
        entry = _entry([
            _window(0.0, 1.0, burn_rate=20.0),
            _window(1.0, 2.0, burn_rate=30.0),
        ])
        merged = evaluate_alerts(_results(entry), rules=[BurnRateRule()])
        raw = evaluate_alerts(
            _results(entry), rules=[BurnRateRule()],
            config=AlertConfig(dedup=False),
        )
        assert len(merged) == 1 and len(raw) == 2

    def test_default_rules_resolve_from_registry(self):
        rules = default_rules(AlertConfig(fast_burn=10.0, slow_burn=5.0))
        assert [type(r) for r in rules] == [
            BurnRateRule, ThresholdRule, AbsenceRule,
        ]
        assert rules[0].fast_burn == 10.0
        assert rules[0].slow_burn == 5.0

    def test_firings_emit_alert_events_and_serialize(self):
        entry = _entry([_window(0.0, 1.0, burn_rate=20.0)])
        tracer = Tracer()
        firings = evaluate_alerts(
            _results(entry, policy="slo"), rules=[BurnRateRule()],
            tracer=tracer,
        )
        assert [e["kind"] for e in tracer.events] == ["alert"]
        assert tracer.events[0]["rule"] == "burn_rate"
        assert tracer.events[0]["policy"] == "slo"
        lines = alerts_to_jsonl(firings).splitlines()
        assert [json.loads(l)["rule"] for l in lines] == ["burn_rate"]
        assert "burn_rate" in render_alerts(firings)
        assert render_alerts([]) == "alerts: none fired"


# ----------------------------------------------------------------------
# Health scoring
# ----------------------------------------------------------------------
def _snapshot(state="active", workers=(), max_pending=64, rejected=0):
    return {
        "state": state,
        "workers": [
            {"index": i, "state": s, "pending": p}
            for i, (s, p) in enumerate(workers)
        ],
        "max_pending": max_pending,
        "rejected": rejected,
    }


class TestScorePool:
    def test_all_active_is_healthy(self):
        report = score_pool(_snapshot(workers=[("active", 0), ("active", 1)]))
        assert report.status == HEALTHY
        assert report.ok and report.reasons == ()

    def test_failed_among_live_is_degraded(self):
        report = score_pool(_snapshot(workers=[("active", 0), ("failed", 0)]))
        assert report.status == DEGRADED
        assert report.ok
        assert any("failed" in r for r in report.reasons)

    def test_no_active_workers_is_unhealthy(self):
        report = score_pool(_snapshot(workers=[("failed", 0), ("failed", 0)]))
        assert report.status == UNHEALTHY
        assert not report.ok

    def test_draining_pool_is_unhealthy(self):
        report = score_pool(
            _snapshot(state="draining", workers=[("active", 0)])
        )
        assert report.status == UNHEALTHY

    def test_saturation_and_rejections_degrade(self):
        hot = score_pool(
            _snapshot(workers=[("active", 60)], max_pending=64)
        )
        assert hot.status == DEGRADED
        assert any("queue capacity" in r for r in hot.reasons)
        bounced = score_pool(
            _snapshot(workers=[("active", 0)], rejected=3)
        )
        assert bounced.status == DEGRADED
        assert any("rejected" in r for r in bounced.reasons)


class TestScoreFleet:
    def test_healthy_fleet(self):
        report = score_fleet({"active": 2}, completed=100, slo_violations=2)
        assert report.status == HEALTHY
        assert report.to_dict() == {"status": "healthy", "reasons": []}

    def test_failed_replica_among_live_degrades(self):
        report = score_fleet(
            {"active": 1, "failed": 1}, completed=100, slo_violations=0
        )
        assert report.status == DEGRADED

    def test_no_live_replicas_is_unhealthy(self):
        report = score_fleet({"failed": 2}, completed=10, slo_violations=0)
        assert report.status == UNHEALTHY

    def test_budget_exhaustion_degrades(self):
        report = score_fleet(
            {"active": 2}, completed=100, slo_violations=20, budget=0.05
        )
        assert report.status == DEGRADED
        assert any("error budget" in r for r in report.reasons)


# ----------------------------------------------------------------------
# Profiler
# ----------------------------------------------------------------------
def _profiled_tracer():
    tracer = Tracer()
    cell = tracer.bind(scenario="steady", policy="queue",
                       router="round_robin", replicas=1)
    for j, bits in enumerate([8, (4, 8)]):
        start, finish = 0.1 + j * 0.1, 0.15 + j * 0.1
        cell.emit("batch", start, replica=0, bits=bits, size=2,
                  start_s=start, finish_s=finish, service_s=0.05,
                  queue_depth=0, energy_pj=1000.0)
        for k in range(2):
            rid = j * 2 + k
            cell.emit("complete", finish, request_id=rid, replica=0,
                      bits=bits, arrival_s=rid * 0.01, start_s=start,
                      finish_s=finish, latency_s=finish - rid * 0.01)
    tracer.emit("stage", 0.0, stage="serve", seconds=1.5)
    return tracer


class TestProfile:
    def test_folds_spans_into_attribution_tables(self):
        payload = profile_events(_profiled_tracer().events)
        [cell] = payload["cells"]
        assert cell["cell"]["scenario"] == "steady"
        per_bit = {row["bits"]: row for row in cell["per_bit"]}
        assert set(per_bit) == {"8", "W4A8"}
        assert sum(r["share"] for r in per_bit.values()) == pytest.approx(1.0)
        assert per_bit["8"]["requests"] == 2
        assert per_bit["8"]["energy_pj"] == pytest.approx(1000.0)
        waits = {r["bits"]: r for r in cell["queue_wait_by_bits"]}
        assert waits["8"]["wait_s"] > 0
        assert 0.0 <= waits["8"]["wait_share"] <= 1.0
        assert payload["stages"] == [
            {"stage": "serve", "start_s": 0.0, "seconds": 1.5},
        ]

    def test_render_emits_markdown_tables(self):
        out = render_profile(profile_events(_profiled_tracer().events))
        assert "# Span profile" in out
        assert "### Self-time by bit-width" in out
        assert "### Queue wait by bit-width" in out
        assert "## Pipeline stages" in out

    def test_profile_is_deterministic(self):
        events = _profiled_tracer().events
        assert profile_events(events) == profile_events(events)


# ----------------------------------------------------------------------
# Run-dir regression diffing
# ----------------------------------------------------------------------
def _grid_cell(**overrides):
    cell = {
        "scenario": "steady", "policy": "queue", "router": "round_robin",
        "replicas": 2, "latency_p50_s": 0.010, "latency_p95_s": 0.020,
        "latency_p99_s": 0.030, "throughput_rps": 100.0,
        "slo_violations": 0, "energy_per_request_pj": 500.0,
        "accuracy": 0.9,
    }
    cell.update(overrides)
    cell["key"] = (
        cell["scenario"], cell["policy"], cell["router"], cell["replicas"],
    )
    return cell


def _write_loadtest_report(run_dir, cells):
    run_dir.mkdir(parents=True, exist_ok=True)
    grid = [{k: v for k, v in c.items() if k != "key"} for c in cells]
    (run_dir / "loadtest_report.json").write_text(
        json.dumps({"grid": grid})
    )


class TestDiff:
    def test_identical_cells_are_ok(self):
        payload = diff_reports([_grid_cell()], [_grid_cell()])
        assert payload["verdict"] == "ok"
        assert payload["regressions"] == 0
        assert payload["cells_compared"] == 1

    def test_out_of_band_latency_is_a_regression(self):
        payload = diff_reports(
            [_grid_cell()], [_grid_cell(latency_p95_s=0.040)]
        )
        assert payload["verdict"] == "regression"
        [row] = payload["cells"][0]["changes"]
        assert row["metric"] == "latency_p95_s" and row["regression"]

    def test_improvement_is_reported_but_never_fails(self):
        payload = diff_reports(
            [_grid_cell()], [_grid_cell(throughput_rps=200.0)]
        )
        assert payload["verdict"] == "ok"
        [row] = payload["cells"][0]["changes"]
        assert row["metric"] == "throughput_rps" and not row["regression"]
        assert "improved" in render_diff(payload)

    def test_in_band_drift_stays_silent(self):
        payload = diff_reports(
            [_grid_cell()], [_grid_cell(latency_p95_s=0.0204)],
            tolerance=0.05,
        )
        assert payload["cells"][0]["changes"] == []

    def test_missing_cell_in_b_is_a_regression(self):
        payload = diff_reports([_grid_cell()], [])
        assert payload["verdict"] == "regression"
        assert payload["cells_missing_in_b"] == [
            ["steady", "queue", "round_robin", 2],
        ]
        assert "MISSING in B" in render_diff(payload)

    def test_run_dir_round_trip_and_plane_mismatch(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        _write_loadtest_report(a, [_grid_cell()])
        _write_loadtest_report(b, [_grid_cell(latency_p95_s=0.1)])
        payload = diff_run_dirs(str(a), str(b))
        assert payload["plane"] == "loadtest"
        assert payload["verdict"] == "regression"

        real = tmp_path / "real"
        real.mkdir()
        (real / "serve_real_report.json").write_text(
            json.dumps({"reports": [{"policy": "queue"}]})
        )
        assert load_run_report(str(real))[0] == "serve-real"
        with pytest.raises(ValueError, match="cannot diff"):
            diff_run_dirs(str(a), str(real))

    def test_missing_report_raises_with_guidance(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="repro loadtest"):
            load_run_report(str(tmp_path))


# ----------------------------------------------------------------------
# CLI exit codes
# ----------------------------------------------------------------------
class TestSLOCheckCLI:
    def test_missing_sidecar_exits_2(self, tmp_path, capsys):
        from repro.__main__ import main

        assert main(["slo", "check", str(tmp_path)]) == 2
        assert "repro loadtest --obs" in capsys.readouterr().err

    def test_obs_diff_usage_error_exits_2(self, tmp_path, capsys):
        from repro.__main__ import main

        assert main(["obs", "diff", str(tmp_path)]) == 2
