"""Module system: registration, traversal, state dicts, modes."""

import numpy as np
import pytest

from repro.nn import (
    BatchNorm2d,
    Conv2d,
    Linear,
    Module,
    ModuleList,
    Parameter,
    Sequential,
)
from repro.tensor import Tensor


class Leaf(Module):
    def __init__(self):
        super().__init__()
        self.w = Parameter(np.ones(3, dtype=np.float32))

    def forward(self, x):
        return x * self.w


class Tree(Module):
    def __init__(self):
        super().__init__()
        self.a = Leaf()
        self.b = Leaf()
        self.register_buffer("counter", np.zeros(1, dtype=np.float32))

    def forward(self, x):
        return self.b(self.a(x))


class TestRegistration:
    def test_parameters_collected_recursively(self):
        tree = Tree()
        names = [n for n, _ in tree.named_parameters()]
        assert names == ["a.w", "b.w"]

    def test_buffers_collected(self):
        tree = Tree()
        assert dict(tree.named_buffers())["counter"].shape == (1,)

    def test_reassignment_replaces_not_duplicates(self):
        tree = Tree()
        tree.a = Leaf()
        assert len(tree.parameters()) == 2

    def test_num_parameters(self):
        assert Tree().num_parameters() == 6

    def test_modules_iteration(self):
        tree = Tree()
        kinds = [type(m).__name__ for m in tree.modules()]
        assert kinds == ["Tree", "Leaf", "Leaf"]

    def test_apply(self):
        tree = Tree()
        seen = []
        tree.apply(lambda m: seen.append(type(m).__name__))
        assert len(seen) == 3


class TestModes:
    def test_train_eval_propagates(self):
        tree = Tree()
        tree.eval()
        assert not tree.a.training and not tree.b.training
        tree.train()
        assert tree.a.training

    def test_zero_grad(self):
        leaf = Leaf()
        out = leaf(Tensor(np.ones(3, dtype=np.float32)))
        out.backward(np.ones(3, dtype=np.float32))
        assert leaf.w.grad is not None
        leaf.zero_grad()
        assert leaf.w.grad is None


class TestStateDict:
    def test_roundtrip(self):
        a, b = Tree(), Tree()
        for p in a.parameters():
            p.data += 1.0
        b.load_state_dict(a.state_dict())
        for pa, pb in zip(a.parameters(), b.parameters()):
            assert np.allclose(pa.data, pb.data)

    def test_state_dict_copies(self):
        tree = Tree()
        state = tree.state_dict()
        state["a.w"][0] = 99.0
        assert tree.a.w.data[0] == 1.0

    def test_missing_key_rejected(self):
        tree = Tree()
        state = tree.state_dict()
        del state["a.w"]
        with pytest.raises(KeyError, match="missing"):
            tree.load_state_dict(state)

    def test_unexpected_key_rejected(self):
        tree = Tree()
        state = tree.state_dict()
        state["zzz"] = np.zeros(1)
        with pytest.raises(KeyError, match="unexpected"):
            tree.load_state_dict(state)

    def test_shape_mismatch_rejected(self):
        tree = Tree()
        state = tree.state_dict()
        state["a.w"] = np.zeros(7, dtype=np.float32)
        with pytest.raises(ValueError, match="shape"):
            tree.load_state_dict(state)

    def test_bn_running_stats_in_state(self):
        bn = BatchNorm2d(4)
        assert "running_mean" in bn.state_dict()


class TestContainers:
    def test_sequential_forward_order(self):
        seq = Sequential(Leaf(), Leaf())
        out = seq(Tensor(np.ones(3, dtype=np.float32)))
        assert np.allclose(out.data, 1.0)
        assert len(seq) == 2
        assert isinstance(seq[0], Leaf)

    def test_sequential_registers_params(self):
        assert len(Sequential(Leaf(), Leaf()).parameters()) == 2

    def test_module_list(self):
        ml = ModuleList([Leaf(), Leaf()])
        ml.append(Leaf())
        assert len(ml) == 3
        assert len(ModuleList([Leaf()]).parameters()) == 1

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)


class TestDeregistration:
    """Overwriting registered state with plain values must detach it."""

    def test_module_overwritten_with_none_is_deregistered(self):
        tree = Tree()
        tree.a = None
        assert "a" not in tree._modules
        assert all(not n.startswith("a.") for n, _ in tree.named_parameters())

    def test_parameter_overwritten_with_plain_value_is_deregistered(self):
        leaf = Leaf()
        leaf.w = None
        assert dict(leaf.named_parameters()) == {}
        assert leaf.state_dict() == {}

    def test_buffer_reassigned_array_stays_registered(self):
        bn = BatchNorm2d(3)
        fresh = np.full(3, 7.0, dtype=np.float32)
        bn.running_mean = fresh
        assert bn._buffers["running_mean"] is fresh
        assert np.array_equal(bn.state_dict()["running_mean"], fresh)

    def test_delattr_cleans_registries(self):
        tree = Tree()
        del tree.b
        assert "b" not in tree._modules
        leaf = Leaf()
        del leaf.w
        assert dict(leaf.named_parameters()) == {}

    def test_structure_epoch_bumps_on_surgery(self):
        tree = Tree()
        before = Module.structure_epoch()
        tree.a = None
        assert Module.structure_epoch() > before

    def test_epoch_unchanged_by_plain_attribute_writes(self):
        tree = Tree()
        before = Module.structure_epoch()
        tree.some_flag = 1
        tree.some_flag = 2
        assert Module.structure_epoch() == before


class TestContainerSlotAssignment:
    """Index assignment keeps registry and execution list in lockstep."""

    def test_sequential_setitem(self):
        seq = Sequential(Linear(2, 2), Linear(2, 2))
        new = Linear(2, 2)
        seq[1] = new
        assert seq[1] is new
        assert seq._modules["layer1"] is new
        x = Tensor(np.ones((1, 2), dtype=np.float32))
        assert seq(x).shape == (1, 2)  # forward runs the updated chain

    def test_sequential_setitem_negative_index(self):
        seq = Sequential(Linear(2, 2), Linear(2, 2))
        new = Linear(2, 2)
        seq[-1] = new
        assert seq[1] is new

    def test_sequential_setitem_rejects_non_module(self):
        seq = Sequential(Linear(2, 2))
        with pytest.raises(TypeError):
            seq[0] = 42

    def test_sequential_attr_assignment_syncs_execution_list(self):
        seq = Sequential(Linear(2, 2), Linear(2, 2))
        new = Linear(2, 2)
        seq.layer0 = new
        assert seq[0] is new

    def test_module_list_setitem(self):
        ml = ModuleList([Linear(2, 2), Linear(2, 2)])
        new = Linear(2, 2)
        ml[0] = new
        assert ml[0] is new
        assert ml._modules["item0"] is new

    def test_container_slot_cannot_be_detached(self):
        """Holes make no sense in an ordered chain: detaching a slot is
        rejected instead of desynchronising registry and execution list."""
        seq = Sequential(Linear(2, 2), Linear(2, 2))
        with pytest.raises(TypeError, match="detach"):
            seq.layer0 = None
        with pytest.raises(TypeError, match="delete"):
            del seq.layer1
        # Both views untouched after the rejected surgery.
        assert len(seq) == 2
        assert set(seq._modules) == {"layer0", "layer1"}

    def test_container_non_slot_attributes_still_writable(self):
        seq = Sequential(Linear(2, 2))
        seq.note = "ok"          # plain attribute, not a slot
        seq.layer9 = None        # no such slot: plain attribute too
        assert seq.note == "ok"
        assert len(seq) == 1
