"""Switchable trainers and the method recipes of the tables."""

import numpy as np
import pytest

from repro import rng as rng_mod
from repro.baselines import (
    train_adabits,
    train_cdt,
    train_sbm_independent,
    train_sp,
)
from repro.core import (
    CascadeDistillation,
    SwitchableTrainer,
    TrainConfig,
    evaluate_all_bits,
    evaluate_bitwidth,
    train_fixed_precision,
)
from repro.data import cifar10_like
from repro.nn import models
from repro.quant import SwitchableFactory, SwitchablePrecisionNetwork

BITS = [4, 32]


def tiny_builder(factory):
    return models.mobilenet_v2(num_classes=10, setting="tiny",
                               factory=factory, width_mult=0.25)


@pytest.fixture(scope="module")
def data():
    rng_mod.set_seed(0)
    return cifar10_like(num_train=160, num_test=64, image_size=12,
                        difficulty=1.5)


class TestTrainer:
    def test_fit_records_history_and_reduces_loss(self, data):
        train, _ = data
        sp = SwitchablePrecisionNetwork(
            tiny_builder(SwitchableFactory(BITS)), BITS)
        trainer = SwitchableTrainer(
            sp, CascadeDistillation(beta=1.0),
            TrainConfig(epochs=3, batch_size=32),
        )
        history = trainer.fit(train)
        assert len(history.epoch_losses) == 3
        assert history.epoch_losses[-1] < history.epoch_losses[0]
        assert history.wall_seconds > 0

    def test_evaluate_all_bits_keys(self, data):
        train, test = data
        sp = SwitchablePrecisionNetwork(
            tiny_builder(SwitchableFactory(BITS)), BITS)
        accs = evaluate_all_bits(sp, test)
        assert set(accs) == set(BITS)
        assert all(0.0 <= a <= 1.0 for a in accs.values())

    def test_training_beats_chance(self, data):
        train, test = data
        rng_mod.set_seed(0)
        sp = SwitchablePrecisionNetwork(
            tiny_builder(SwitchableFactory(BITS)), BITS)
        SwitchableTrainer(
            sp, CascadeDistillation(beta=1.0),
            TrainConfig(epochs=4, batch_size=32),
        ).fit(train)
        accs = evaluate_all_bits(sp, test)
        assert accs[32] > 0.15  # chance is 0.10 for 10 classes

    def test_fixed_precision_guard(self, data):
        train, _ = data
        sp = SwitchablePrecisionNetwork(
            tiny_builder(SwitchableFactory(BITS)), BITS)
        with pytest.raises(ValueError, match="single-candidate"):
            train_fixed_precision(sp, train)


class TestRecipes:
    @pytest.mark.parametrize("recipe", [train_cdt, train_sp, train_adabits])
    def test_switchable_recipes(self, recipe, data):
        train, test = data
        rng_mod.set_seed(0)
        cfg = TrainConfig(epochs=1, batch_size=32)
        result = recipe(tiny_builder, BITS, train, test, cfg)
        assert set(result.accuracies) == set(BITS)
        assert result.method in ("cdt", "sp", "adabits")
        assert "TrainedSPNet" in repr(result)

    def test_sbm_trains_one_network_per_bit(self, data):
        train, test = data
        rng_mod.set_seed(0)
        cfg = TrainConfig(epochs=1, batch_size=32)
        result = train_sbm_independent(tiny_builder, BITS, train, test, cfg)
        assert set(result.accuracies) == set(BITS)
        assert result.method == "sbm"
        assert result.accuracy_at(32) >= 0.0
