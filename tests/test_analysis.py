"""The static invariant analyzer: framework, every rule, and the gate.

Three tiers:

* framework units — suppression parsing, finding round-trips, baseline
  semantics, the parsed project model;
* per-rule true positives against the fixture mini-packages under
  ``tests/fixtures/analysis/`` (each tree is a package literally named
  ``repro`` so the rules' real-tree defaults apply; the trees are
  parsed, never imported);
* the meta-gate — the real tree analyzes clean, and deliberately
  injecting one violation per rule into a temp-dir copy trips exactly
  that rule at the expected file:line.
"""

import json
import shutil
from pathlib import Path

import pytest

from repro.__main__ import main
from repro.analysis import load_project, run_check
from repro.analysis.checker import all_checkers
from repro.analysis.findings import (
    Finding,
    parse_suppressions,
    severity_at_least,
)
from repro.analysis.report import load_baseline, to_json_payload
from repro.api.registry import CHECKERS, RegistryError

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "analysis"
REAL_TREE = Path(__file__).resolve().parent.parent / "src" / "repro"
RULES = ("determinism", "registries", "layering", "spawn", "spans")


def fixture_root(rule):
    return str(FIXTURES / rule / "repro")


def check_fixture(rule, **kwargs):
    return run_check(root=fixture_root(rule), rules=[rule], **kwargs)


def by_rule(result, rule):
    return [f for f in result.active if f.rule == rule]


# ----------------------------------------------------------------------
# Framework units
# ----------------------------------------------------------------------

class TestSuppressions:
    def test_inline_same_line(self):
        sup, = parse_suppressions(
            "x = wall()  # repro: allow[determinism] telemetry\n"
        )
        assert sup.covers("determinism", 1)
        assert not sup.covers("determinism", 2)   # not comment-only
        assert not sup.covers("layering", 1)
        assert sup.reason == "telemetry"

    def test_comment_only_blesses_next_line(self):
        source = "# repro: allow[spawn] handoff is pickled manually\nx = 1\n"
        sup, = parse_suppressions(source)
        assert sup.comment_only
        assert sup.covers("spawn", 1) and sup.covers("spawn", 2)
        assert not sup.covers("spawn", 3)

    def test_multiple_rules_in_one_marker(self):
        sup, = parse_suppressions("y = f()  # repro: allow[a, b]\n")
        assert sup.rules == frozenset({"a", "b"})


class TestFinding:
    def test_json_round_trip(self):
        finding = Finding(
            path="repro/x.py", line=3, rule="spans", severity="warning",
            message="m", suppressed=True,
        )
        assert Finding.from_json_dict(finding.to_json_dict()) == finding

    def test_severity_validated(self):
        with pytest.raises(ValueError):
            Finding(path="p", line=1, rule="r", severity="fatal",
                    message="m")

    def test_severity_ordering(self):
        assert severity_at_least("error", "warning")
        assert severity_at_least("warning", "warning")
        assert not severity_at_least("warning", "error")

    def test_active_excludes_suppressed_and_baselined(self):
        finding = Finding(path="p", line=1, rule="r", severity="error",
                          message="m")
        assert finding.active
        assert not finding.with_flags(suppressed=True).active
        assert not finding.with_flags(baselined=True).active


class TestProjectModel:
    def test_relative_imports_resolve(self):
        project = load_project(fixture_root("layering"))
        trainer = project.get("repro.core.trainer")
        assert any(e.target == "repro.serving" for e in trainer.imports)
        assert trainer.origins["pool"] == "repro.serving.pool"

    def test_deferred_imports_marked(self):
        project = load_project(fixture_root("layering"))
        beta = project.get("repro.workload.beta")
        deferred = [e for e in beta.imports if e.deferred]
        assert len(deferred) == 1
        assert deferred[0].target == "repro.workload.alpha"

    def test_module_attr_resolution(self):
        project = load_project(fixture_root("registries"))
        assert project.resolves_attr("repro.zoo", "good_fn")
        assert not project.resolves_attr("repro.zoo", "missing_fn")

    def test_non_package_root_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_project(str(tmp_path))


class TestCheckerRegistry:
    def test_all_five_rules_registered(self):
        assert set(RULES) <= set(CHECKERS.names())
        for name in RULES:
            checker = CHECKERS.get(name)()
            assert checker.rule == name
            assert checker.description

    def test_unknown_rule_lists_available(self):
        with pytest.raises(RegistryError, match="determinism"):
            all_checkers(["nosuch"])


# ----------------------------------------------------------------------
# Per-rule true positives (fixture trees)
# ----------------------------------------------------------------------

class TestDeterminismRule:
    def test_every_bad_idiom_flagged(self):
        result = check_fixture("determinism")
        flagged = {f.line for f in by_rule(result, "determinism")
                   if f.path == "repro/sim.py"}
        # time.time / perf_counter / bare monotonic ref / np global RNG
        # / stdlib singleton / unseeded default_rng
        assert flagged == {9, 10, 11, 12, 13, 14}

    def test_seeded_rngs_pass(self):
        result = check_fixture("determinism")
        good = {16, 17}  # default_rng(7), random.Random(3)
        assert not good & {f.line for f in result.findings
                           if f.path == "repro/sim.py"}

    def test_real_plane_allowlisted(self):
        result = check_fixture("determinism")
        assert not [f for f in result.findings
                    if f.path.startswith("repro/serving/")]

    def test_strict_virtual_plane_bans_the_seam(self):
        result = check_fixture("determinism")
        engine = [f for f in by_rule(result, "determinism")
                  if f.path == "repro/serve/engine.py"]
        assert len(engine) == 1 and engine[0].line == 5
        assert "wall_clock_s" in engine[0].message

    def test_inline_suppression_mutes_but_reports(self):
        result = check_fixture("determinism")
        suppressed = [f for f in result.findings
                      if f.path == "repro/sim.py" and f.line == 18]
        assert len(suppressed) == 1
        assert suppressed[0].suppressed and not suppressed[0].active


class TestRegistriesRule:
    @pytest.fixture(scope="class")
    def findings(self):
        return by_rule(check_fixture("registries"), "registries")

    def test_dangling_attr_pointer(self, findings):
        assert any("'ghost'" in f.message and "missing_fn" in f.message
                   for f in findings)

    def test_missing_module_pointer(self, findings):
        assert any("'dangling'" in f.message
                   and "repro.nowhere" in f.message for f in findings)

    def test_keyed_entry_key_must_exist(self, findings):
        assert any("'keyed_bad'" in f.message for f in findings)
        assert not any("'keyed_ok'" in f.message for f in findings)

    def test_loop_registration_rejected(self, findings):
        assert any("string literals" in f.message for f in findings)

    def test_registry_outside_catalogue(self, findings):
        assert any("ORPHANS" in f.message for f in findings)

    def test_decorator_without_lazy_declaration(self, findings):
        assert any("'unclaimed'" in f.message
                   and f.path == "repro/zoo.py" for f in findings)

    def test_decorator_cannot_claim_foreign_pointer(self, findings):
        assert any("'hijacked'" in f.message
                   and f.path == "repro/elsewhere.py" for f in findings)

    def test_claimed_entry_is_clean(self, findings):
        assert not any("'claimed'" in f.message
                       and f.path == "repro/zoo.py" for f in findings)

    def test_cli_literal_choices_flagged(self, findings):
        cli = [f for f in findings if f.path == "repro/__main__.py"]
        assert len(cli) == 1
        assert "'good'" in cli[0].message
        # ("text", "json") overlaps no registry entry: not flagged.


class TestLayeringRule:
    def test_upward_import_flagged(self):
        result = check_fixture("layering")
        up = [f for f in by_rule(result, "layering")
              if f.path == "repro/core/trainer.py"]
        assert len(up) == 1 and up[0].line == 3
        assert "layer violation" in up[0].message

    def test_downward_import_clean(self):
        result = check_fixture("layering")
        assert not [f for f in result.findings
                    if f.path == "repro/serve/engine.py"]

    def test_module_cycle_flagged_once(self):
        result = check_fixture("layering")
        cycles = [f for f in by_rule(result, "layering")
                  if "import cycle" in f.message]
        assert len(cycles) == 1
        assert "repro.workload.alpha" in cycles[0].message
        assert "repro.workload.beta" in cycles[0].message


class TestSpawnRule:
    @pytest.fixture(scope="class")
    def findings(self):
        return by_rule(check_fixture("spawn"), "spawn")

    def test_bad_targets_and_payloads(self, findings):
        lines = {f.line for f in findings
                 if f.path == "repro/serving/pool.py"}
        # lambda target, nested-def target, bound-method target,
        # lambda payload, open() payload, local-callable payload
        assert lines == {16, 17, 19, 22, 23, 24}

    def test_safe_idioms_pass(self, findings):
        assert not {20, 25, 26} & {f.line for f in findings}

    def test_scope_is_multiprocessing_importers_only(self, findings):
        assert not [f for f in findings if f.path == "repro/clean.py"]


class TestSpansRule:
    @pytest.fixture(scope="class")
    def result(self):
        return check_fixture("spans")

    def test_undeclared_emit_flagged(self, result):
        assert any(f.path == "repro/eng.py" and "'zeta'" in f.message
                   for f in by_rule(result, "spans"))

    def test_undeclared_consumer_match_flagged(self, result):
        assert any(f.path == "repro/obs/views.py"
                   and "'delta'" in f.message
                   for f in by_rule(result, "spans"))

    def test_unconsumed_vocab_kind_is_error(self, result):
        gamma = [f for f in by_rule(result, "spans")
                 if "'gamma'" in f.message and f.severity == "error"]
        assert len(gamma) == 1
        assert gamma[0].path == "repro/obs/tracer.py"
        assert gamma[0].line == 6

    def test_unemitted_vocab_kind_is_warning(self, result):
        assert any("'gamma'" in f.message and f.severity == "warning"
                   for f in result.findings)

    def test_dynamic_reemit_skipped(self, result):
        assert not any(f.line == 8 and f.path == "repro/eng.py"
                       for f in result.findings)

    def test_declared_emits_and_matches_clean(self, result):
        assert not any("'alpha'" in f.message or "'beta'" in f.message
                       for f in result.findings)


# ----------------------------------------------------------------------
# Baseline semantics + JSON payload
# ----------------------------------------------------------------------

class TestBaseline:
    def test_baselined_findings_do_not_fail(self):
        first = check_fixture("layering")
        assert first.failed()
        baseline = [f.to_json_dict() for f in first.active]
        second = check_fixture("layering", baseline=baseline)
        assert not second.failed()
        assert all(f.baselined for f in second.findings if not f.active)

    def test_stale_baseline_entry_fails_the_gate(self):
        stale = [{"path": "repro/gone.py", "line": 1,
                  "rule": "layering", "severity": "error",
                  "message": "paid off long ago"}]
        result = check_fixture("layering", baseline=stale + [
            f.to_json_dict() for f in check_fixture("layering").active
        ])
        assert result.stale_baseline == stale
        assert result.failed()

    def test_load_baseline_rejects_other_schema(self, tmp_path):
        path = tmp_path / "base.json"
        path.write_text('{"schema_version": 99, "findings": []}')
        with pytest.raises(ValueError, match="schema_version"):
            load_baseline(str(path))

    def test_committed_baseline_is_empty(self):
        committed = load_baseline(str(
            Path(__file__).resolve().parent.parent
            / "scripts" / "check_baseline.json"
        ))
        assert committed == []


class TestJsonPayload:
    def test_schema_round_trip(self):
        result = check_fixture("spans")
        payload = to_json_payload(result)
        assert payload["schema_version"] == 1
        assert {r["rule"] for r in payload["rules"]} == {"spans"}
        rebuilt = [Finding.from_json_dict(f) for f in payload["findings"]]
        assert rebuilt == result.findings
        assert payload["counts"]["total"] == len(result.findings)
        assert payload["counts"]["active"] == len(result.active)


# ----------------------------------------------------------------------
# The real tree: clean today, and each rule actually guards it
# ----------------------------------------------------------------------

class TestRealTree:
    def test_repro_check_runs_clean(self):
        result = run_check(root=str(REAL_TREE))
        assert len(result.checkers) >= 5
        assert result.active == [], [f.anchor for f in result.active]

    def test_engine_clock_default_is_suppressed_not_invisible(self):
        result = run_check(root=str(REAL_TREE), rules=["determinism"])
        suppressed = [f for f in result.findings if f.suppressed]
        assert any(f.path == "repro/serve/engine.py" for f in suppressed)


def inject(tree, relpath, code):
    """Append ``code`` to a copied module; return its first line number."""
    path = tree / relpath
    original = path.read_text()
    path.write_text(original + code)
    return len(original.splitlines()) + 1


@pytest.fixture()
def tree_copy(tmp_path):
    dst = tmp_path / "repro"
    shutil.copytree(REAL_TREE, dst,
                    ignore=shutil.ignore_patterns("__pycache__"))
    return dst


class TestInjectedViolations:
    """Acceptance: one deliberate violation per rule, caught at the
    exact file:line, in an analyzed copy (never the live tree)."""

    def expect(self, tree, rule, relpath, line):
        result = run_check(root=str(tree), rules=[rule])
        hits = [f for f in result.active
                if f.rule == rule and f.path == relpath]
        assert any(f.line == line for f in hits), (
            f"expected {rule} at {relpath}:{line}, got "
            f"{[f.anchor for f in result.active]}"
        )
        assert result.failed("error")

    def test_wall_clock_in_simulator(self, tree_copy):
        line = inject(tree_copy, "serve/simulator.py",
                      "import time\n_T0 = time.time()\n")
        self.expect(tree_copy, "determinism",
                    "repro/serve/simulator.py", line + 1)

    def test_dangling_manifest_pointer(self, tree_copy):
        line = inject(
            tree_copy, "api/registry.py",
            'MODELS.register_lazy("ghost", "repro.nn.models:ghost_net")\n',
        )
        self.expect(tree_copy, "registries", "repro/api/registry.py", line)

    def test_core_importing_serving(self, tree_copy):
        line = inject(tree_copy, "core/trainer.py",
                      "from repro.serving import pool as _pool\n")
        self.expect(tree_copy, "layering", "repro/core/trainer.py", line)

    def test_lambda_into_worker_pool(self, tree_copy):
        line = inject(
            tree_copy, "serving/pool.py",
            "def _bad_spawn(ctx):\n"
            "    return ctx.Process(target=lambda: None)\n",
        )
        self.expect(tree_copy, "spawn", "repro/serving/pool.py", line + 1)

    def test_unknown_span_kind(self, tree_copy):
        line = inject(
            tree_copy, "serve/cluster.py",
            "def _bogus_span(tracer):\n"
            '    tracer.emit("warp_speed", 0.0)\n',
        )
        self.expect(tree_copy, "spans", "repro/serve/cluster.py", line + 1)


# ----------------------------------------------------------------------
# CLI plumbing
# ----------------------------------------------------------------------

class TestCheckCli:
    def test_clean_tree_exits_zero(self, capsys):
        assert main(["check", "--fail-on", "error"]) == 0
        assert "0 active finding(s)" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert main(["check", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in RULES:
            assert rule in out

    def test_unknown_rule_is_usage_error(self, capsys):
        assert main(["check", "--rules", "nosuch"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_json_payload_parses(self, capsys):
        assert main(["check", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == 1
        assert payload["counts"]["active"] == 0
        assert len(payload["rules"]) >= 5

    def test_findings_fail_the_exit_code(self, capsys):
        assert main([
            "check", "--root", fixture_root("layering"),
            "--rules", "layering",
        ]) == 1
        assert "layer violation" in capsys.readouterr().out

    def test_baseline_flag_round_trip(self, tmp_path, capsys):
        assert main([
            "check", "--root", fixture_root("layering"),
            "--rules", "layering", "--json",
        ]) == 1
        payload = json.loads(capsys.readouterr().out)
        base = tmp_path / "baseline.json"
        base.write_text(json.dumps(payload))
        assert main([
            "check", "--root", fixture_root("layering"),
            "--rules", "layering", "--baseline", str(base),
        ]) == 0

    def test_missing_baseline_is_usage_error(self, capsys):
        assert main(["check", "--baseline", "nope.json"]) == 2
        assert "cannot read baseline" in capsys.readouterr().err
