"""Quantiser correctness: level counts, scaling, error monotonicity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant import (
    DoReFaQuantizer,
    MinMaxQuantizer,
    SBMQuantizer,
    make_quantizer,
)
from repro.tensor import Tensor


def weights(shape=(8, 4, 3, 3), seed=0):
    return Tensor(np.random.default_rng(seed).normal(size=shape).astype(np.float32),
                  requires_grad=True)


class TestRegistry:
    def test_make_by_name(self):
        assert isinstance(make_quantizer("sbm"), SBMQuantizer)
        assert isinstance(make_quantizer("DoReFa"), DoReFaQuantizer)
        assert isinstance(make_quantizer("minmax"), MinMaxQuantizer)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown quantizer"):
            make_quantizer("foo")


class TestFullPrecisionPassthrough:
    @pytest.mark.parametrize("q", [SBMQuantizer(), DoReFaQuantizer(),
                                   MinMaxQuantizer()])
    def test_32bit_returns_input_unchanged(self, q):
        w = weights()
        assert q.quantize_weight(w, 32) is w
        assert q.quantize_activation(w, 32) is w


class TestSBM:
    def test_weight_level_count(self):
        w = weights()
        for bits in (2, 3, 4):
            q = SBMQuantizer().quantize_weight(w, bits)
            per_channel_levels = [
                len(np.unique(q.data[c])) for c in range(w.shape[0])
            ]
            assert max(per_channel_levels) <= 2 ** bits - 1

    def test_per_channel_max_preserved(self):
        w = weights()
        q = SBMQuantizer().quantize_weight(w, 8)
        for c in range(w.shape[0]):
            assert np.abs(q.data[c]).max() == pytest.approx(
                np.abs(w.data[c]).max(), rel=1e-5
            )

    def test_activation_unsigned_for_nonnegative(self):
        x = Tensor(np.random.default_rng(0).uniform(0, 6, size=(4, 8)).astype(np.float32))
        q = SBMQuantizer().quantize_activation(x, 4)
        assert q.data.min() >= 0.0
        assert len(np.unique(q.data)) <= 16

    def test_activation_signed_for_mixed(self):
        x = Tensor(np.array([-2.0, -1.0, 0.5, 2.0], dtype=np.float32))
        q = SBMQuantizer().quantize_activation(x, 4)
        assert q.data.min() < 0.0

    def test_rejects_one_bit(self):
        with pytest.raises(ValueError):
            SBMQuantizer().quantize_weight(weights(), 1)

    def test_zero_weights_stable(self):
        w = Tensor(np.zeros((2, 3), dtype=np.float32), requires_grad=True)
        q = SBMQuantizer().quantize_weight(w, 4)
        assert np.allclose(q.data, 0.0)

    def test_ste_gradient_flows(self):
        w = weights(shape=(4, 4))
        q = SBMQuantizer().quantize_weight(w, 4)
        q.sum().backward()
        assert np.allclose(w.grad, 1.0)


class TestDoReFa:
    def test_weight_range_bounded_by_max(self):
        w = weights()
        q = DoReFaQuantizer().quantize_weight(w, 4)
        assert np.abs(q.data).max() <= np.abs(w.data).max() + 1e-6

    def test_activation_clipped_to_range(self):
        q = DoReFaQuantizer(activation_range=6.0)
        x = Tensor(np.array([-1.0, 3.0, 100.0], dtype=np.float32))
        out = q.quantize_activation(x, 4)
        assert out.data.min() >= 0.0 and out.data.max() <= 6.0

    def test_activation_level_count(self):
        x = Tensor(np.random.default_rng(1).uniform(0, 6, 2000).astype(np.float32))
        out = DoReFaQuantizer().quantize_activation(x, 3)
        assert len(np.unique(out.data)) <= 8

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            DoReFaQuantizer(activation_range=-1.0)

    def test_1bit_weights_binary(self):
        w = weights()
        q = DoReFaQuantizer().quantize_weight(w, 1)
        assert len(np.unique(np.round(q.data, 5))) <= 2


class TestMinMax:
    def test_preserves_extremes(self):
        x = Tensor(np.array([-3.0, 0.0, 5.0], dtype=np.float32))
        q = MinMaxQuantizer().quantize_weight(x, 4)
        assert q.data.min() == pytest.approx(-3.0, abs=1e-5)
        assert q.data.max() == pytest.approx(5.0, abs=1e-5)

    def test_constant_input_passthrough(self):
        x = Tensor(np.full(5, 2.0, dtype=np.float32))
        assert MinMaxQuantizer().quantize_weight(x, 4) is x


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 1000))
def test_property_sbm_error_decreases_with_bits(seed):
    """More bits -> no larger quantisation error (monotone refinement)."""
    w = Tensor(np.random.default_rng(seed).normal(size=(4, 16)).astype(np.float32))
    q = SBMQuantizer()
    errors = [
        float(np.abs(q.quantize_weight(w, bits).data - w.data).max())
        for bits in (2, 4, 8, 16)
    ]
    assert all(errors[i] >= errors[i + 1] - 1e-6 for i in range(len(errors) - 1))


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 1000), bits=st.integers(2, 8))
def test_property_sbm_idempotent(seed, bits):
    """Quantising an already-quantised tensor changes nothing."""
    w = Tensor(np.random.default_rng(seed).normal(size=(3, 10)).astype(np.float32))
    q = SBMQuantizer()
    once = q.quantize_weight(w, bits)
    twice = q.quantize_weight(Tensor(once.data), bits)
    assert np.allclose(once.data, twice.data, atol=1e-5)
