"""Switchable-precision layers and network-level switching."""

import numpy as np
import pytest

from repro.nn import models
from repro.quant import (
    QuantConv2d,
    QuantLinear,
    SBMQuantizer,
    SwitchableFactory,
    SwitchablePrecisionNetwork,
    normalize_bits,
    set_network_bitwidth,
    sort_bitwidths,
)
from repro.tensor import Tensor


def image(n=2, c=3, size=8):
    return Tensor(np.random.default_rng(0).normal(
        size=(n, c, size, size)).astype(np.float32))


class TestBitSpec:
    def test_normalize_int(self):
        assert normalize_bits(8) == (8, 8)

    def test_normalize_pair(self):
        assert normalize_bits((2, 32)) == (2, 32)

    def test_normalize_rejects_triple(self):
        with pytest.raises(ValueError):
            normalize_bits((1, 2, 3))

    def test_sort_ints(self):
        assert sort_bitwidths([32, 4, 8]) == [4, 8, 32]

    def test_sort_pairs(self):
        pairs = [(32, 32), (2, 2), (32, 2), (2, 32)]
        assert sort_bitwidths(pairs)[0] == (2, 2)
        assert sort_bitwidths(pairs)[-1] == (32, 32)


class TestQuantLayers:
    def test_quant_conv_outputs_differ_across_bits(self):
        conv = QuantConv2d(3, 8, 3, bit_widths=[2, 32], quantizer=SBMQuantizer(),
                           padding=1)
        x = image()
        conv.set_bitwidth(2)
        low = conv(x).data.copy()
        conv.set_bitwidth(32)
        high = conv(x).data.copy()
        assert not np.allclose(low, high)

    def test_quant_conv_32bit_matches_float(self):
        conv = QuantConv2d(3, 4, 3, bit_widths=[32], quantizer=SBMQuantizer())
        x = image()
        out_q = conv(x)
        from repro.tensor import conv2d
        out_f = conv2d(x, conv.weight, stride=1, padding=0)
        assert np.allclose(out_q.data, out_f.data)

    def test_rejects_unknown_bits(self):
        conv = QuantConv2d(3, 4, 3, bit_widths=[4, 8], quantizer=SBMQuantizer())
        with pytest.raises(ValueError, match="candidate"):
            conv.set_bitwidth(16)

    def test_quant_linear_pair_bits(self):
        lin = QuantLinear(6, 4, bit_widths=[(2, 32), (32, 32)],
                          quantizer=SBMQuantizer())
        lin.set_bitwidth((2, 32))
        out = lin(Tensor(np.ones((2, 6), dtype=np.float32)))
        assert out.shape == (2, 4)

    def test_default_active_is_last_candidate(self):
        conv = QuantConv2d(3, 4, 3, bit_widths=[4, 8, 32],
                           quantizer=SBMQuantizer())
        assert conv.active_bits == 32


class TestSwitchableFactory:
    def test_builds_quant_layers(self):
        fac = SwitchableFactory([4, 8], quantizer="sbm")
        assert isinstance(fac.conv(3, 8, 3), QuantConv2d)
        assert isinstance(fac.linear(4, 2), QuantLinear)

    def test_quantize_false_builds_float_layers(self):
        from repro.nn import Conv2d, Linear
        fac = SwitchableFactory([4, 8])
        conv = fac.conv(3, 8, 3, quantize=False)
        assert type(conv) is Conv2d
        lin = fac.linear(4, 2, quantize=False)
        assert type(lin) is Linear

    def test_switchable_bn_toggle(self):
        from repro.nn import BatchNorm2d, SwitchableBatchNorm2d
        assert isinstance(SwitchableFactory([4, 8]).norm(4),
                          SwitchableBatchNorm2d)
        assert isinstance(
            SwitchableFactory([4, 8], switchable_bn=False).norm(4),
            BatchNorm2d,
        )

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            SwitchableFactory([])
        with pytest.raises(TypeError):
            SwitchableFactory([4], quantizer=123)
        with pytest.raises(ValueError):
            SwitchableFactory([4], activation="gelu")


class TestSwitchableNetwork:
    def _network(self, bits=(4, 8, 32)):
        fac = SwitchableFactory(list(bits), quantizer="sbm")
        model = models.mobilenet_v2(num_classes=5, setting="tiny", factory=fac,
                                    width_mult=0.5)
        return SwitchablePrecisionNetwork(model, list(bits))

    def test_bit_widths_sorted(self):
        sp = self._network((32, 4, 8))
        assert sp.bit_widths == (4, 8, 32)
        assert sp.lowest == 4 and sp.highest == 32

    def test_set_network_bitwidth_counts_layers(self):
        sp = self._network()
        switched = set_network_bitwidth(sp.model, 4)
        assert switched > 10  # many quant convs + switchable BNs

    def test_forward_all_yields_every_bits(self):
        sp = self._network()
        outs = dict(sp.forward_all(image(size=16)))
        assert set(outs) == {4, 8, 32}

    def test_at_context_restores(self):
        sp = self._network()
        sp.set_bitwidth(32)
        with sp.at(4):
            pass
        # After the context the previous width is restored.
        from repro.quant import QuantConv2d as QC
        active = {m.active_bits for m in sp.model.modules()
                  if isinstance(m, QC)}
        assert active == {32}

    def test_rejects_model_without_switchable_layers(self):
        model = models.mobilenet_v2(num_classes=5, setting="tiny")
        with pytest.raises(ValueError, match="no switchable"):
            SwitchablePrecisionNetwork(model, [4, 8])

    def test_quantization_noise_ordering(self):
        """Output deviation from FP32 must shrink as bits grow."""
        sp = self._network((4, 8, 16, 32))
        sp.model.eval()
        x = image(size=16)
        outs = {b: o.data.copy() for b, o in sp.forward_all(x)}
        err4 = np.abs(outs[4] - outs[32]).mean()
        err8 = np.abs(outs[8] - outs[32]).mean()
        err16 = np.abs(outs[16] - outs[32]).mean()
        assert err4 > err8 > err16


class TestSwitchableCacheInvalidation:
    """Regression: the cached switchable-layer list must survive surgery.

    The wrapper collects switchable layers once for speed; replacing or
    adding a child module after wrapping used to leave the cache stale,
    silently skipping the new layer on every subsequent switch.
    """

    def _small_net(self, bits=(4, 8)):
        fac = SwitchableFactory(list(bits), quantizer="sbm")
        model = models.resnet8(num_classes=3, factory=fac, width_mult=0.25)
        return SwitchablePrecisionNetwork(model, list(bits)), fac

    def test_replaced_layer_is_switched(self):
        sp, fac = self._small_net()
        block = sp.model.stages[0]
        old = block.conv1.conv  # a QuantConv2d built by the factory
        replacement = fac.conv(
            old.in_channels, old.out_channels, old.kernel_size,
            stride=old.stride, padding=old.padding,
        )
        block.conv1.conv = replacement
        sp.set_bitwidth(4)
        assert replacement.active_bits == 4
        sp.set_bitwidth(8)
        assert replacement.active_bits == 8

    def test_added_layer_is_switched(self):
        sp, fac = self._small_net()
        extra = fac.conv(3, 3, 1)
        sp.model.extra_branch = extra
        sp.set_bitwidth(4)
        assert extra.active_bits == 4

    def test_removed_layer_is_no_longer_switched(self):
        sp, fac = self._small_net()
        extra = fac.conv(3, 3, 1)
        sp.model.extra_branch = extra
        sp.set_bitwidth(4)
        sp.model.extra_branch = None  # surgery: detach the branch
        sp.set_bitwidth(8)
        assert extra.active_bits == 4  # detached layer left untouched
        assert all(name != "extra_branch"
                   for name, _ in sp.model.named_parameters())

    def test_deleted_layer_is_no_longer_switched(self):
        sp, fac = self._small_net()
        extra = fac.conv(3, 3, 1)
        sp.model.extra_branch = extra
        sp.set_bitwidth(4)
        del sp.model.extra_branch
        sp.set_bitwidth(8)
        assert extra.active_bits == 4

    def test_sequential_slot_replacement_switches_and_runs_new_layer(self):
        """Container surgery must update BOTH the registry (switching,
        serialisation) and the execution list the forward pass runs."""
        sp, fac = self._small_net()
        stages = sp.model.stages
        replacement = fac.conv(
            stages[0].conv1.conv.in_channels,
            stages[0].conv1.conv.in_channels, 1,
        )

        from repro.nn.module import Module

        class PassThrough(Module):
            def __init__(self, conv):
                super().__init__()
                self.conv = conv

            def forward(self, x):
                return self.conv(x)

        block = PassThrough(replacement)
        stages[0] = block
        assert stages[0] is block                 # execution list updated
        assert stages._modules["layer0"] is block  # registry updated
        sp.set_bitwidth(4)
        assert replacement.active_bits == 4

    def test_manual_refresh_still_works(self):
        sp, fac = self._small_net()
        extra = fac.conv(3, 3, 1)
        sp.model.extra_branch = extra
        sp._refresh_switchable()
        sp.set_bitwidth(4)
        assert extra.active_bits == 4

    def test_removing_every_switchable_layer_fails_loudly(self):
        bits = (4, 8)
        fac = SwitchableFactory(list(bits), quantizer="sbm")
        conv = fac.conv(3, 4, 3, padding=1)

        from repro.nn.module import Module
        from repro.nn.layers import Conv2d

        class Wrap(Module):
            def __init__(self):
                super().__init__()
                self.conv = conv

            def forward(self, x):
                return self.conv(x)

        sp = SwitchablePrecisionNetwork(Wrap(), list(bits))
        sp.model.conv = Conv2d(3, 4, 3, padding=1)  # no longer switchable
        with pytest.raises(RuntimeError, match="switchable"):
            sp.set_bitwidth(4)
        # ...and keeps failing loudly, not just on the first switch.
        with pytest.raises(RuntimeError, match="switchable"):
            sp.set_bitwidth(8)
