"""Telemetry plane: tracer, metrics, exporters, sidecars, views, CLI."""

import json
import os

import numpy as np
import pytest

from repro.obs import (
    BATCH_SIZE_BUCKETS,
    EVENT_KINDS,
    NULL_TRACER,
    MetricsRecorder,
    MetricsRegistry,
    NullTracer,
    Tracer,
    bits_label,
    find_trace_file,
    load_events_jsonl,
    load_run_events,
    render_events,
    render_run_dir,
    write_obs_artifacts,
)
from repro.obs import console


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_emit_records_kind_time_and_fields(self):
        tracer = Tracer()
        event = tracer.emit("enqueue", 1.5, request_id=7, replica=0)
        assert event == {
            "kind": "enqueue", "time_s": 1.5, "request_id": 7, "replica": 0,
        }
        assert tracer.events == [event]
        assert len(tracer) == 1

    def test_sinks_see_events_at_emit_time(self):
        seen = []
        tracer = Tracer(sinks=(seen.append,))
        tracer.emit("route", 0.0, replica=1)
        tracer.emit("route", 0.1, replica=2)
        assert [e["replica"] for e in seen] == [1, 2]

    def test_bind_stamps_fields_and_emit_site_wins(self):
        tracer = Tracer()
        cell = tracer.bind(policy="slo", replica=0)
        cell.emit("batch", 2.0, size=4)
        cell.emit("batch", 3.0, size=2, replica=9)   # explicit field wins
        assert tracer.events[0]["policy"] == "slo"
        assert tracer.events[0]["replica"] == 0
        assert tracer.events[1]["replica"] == 9

    def test_bind_is_stackable(self):
        tracer = Tracer()
        tracer.bind(scenario="bursty").bind(policy="slo").emit("route", 0.0)
        assert tracer.events[0]["scenario"] == "bursty"
        assert tracer.events[0]["policy"] == "slo"

    def test_jsonl_round_trip(self, tmp_path):
        tracer = Tracer()
        tracer.emit("enqueue", 0.25, request_id=0)
        tracer.emit("complete", 0.5, request_id=0, latency_s=0.25)
        path = tracer.save_jsonl(str(tmp_path / "trace.jsonl"))
        assert load_events_jsonl(path) == tracer.events

    def test_jsonl_bytes_are_deterministic(self):
        def build():
            t = Tracer()
            t.emit("batch", 1.0, bits=(4, 8), size=3)
            return t.to_jsonl()

        assert build() == build()

    def test_event_kinds_cover_request_lifecycle(self):
        for kind in ("enqueue", "route", "bit_switch", "batch",
                     "complete", "autoscale", "fault", "stage"):
            assert kind in EVENT_KINDS


class TestNullTracer:
    def test_shared_singleton_is_disabled(self):
        assert NULL_TRACER.enabled is False
        assert isinstance(NULL_TRACER, NullTracer)

    def test_emit_is_noop_and_bind_returns_self(self):
        assert NULL_TRACER.emit("enqueue", 0.0, request_id=1) is None
        assert NULL_TRACER.bind(policy="slo") is NULL_TRACER

    def test_has_no_instance_state(self):
        # The zero-allocation contract: nothing to accumulate into.
        assert NullTracer.__slots__ == ()


class TestBitsLabel:
    def test_tuple_list_and_int_forms(self):
        assert bits_label((4, 8)) == "W4A8"
        assert bits_label([4, 8]) == "W4A8"      # JSON round-trip form
        assert bits_label(8) == "8"


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_accumulates_per_label_set(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_requests_total", "requests")
        c.inc(replica=0)
        c.inc(2, replica=0)
        c.inc(replica=1)
        assert c.value(replica=0) == 3
        assert c.value(replica=1) == 1
        assert c.value(replica=2) == 0

    def test_counter_rejects_decrease(self):
        c = MetricsRegistry().counter("c")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_keeps_last_value(self):
        g = MetricsRegistry().gauge("depth")
        g.set(5, replica=0)
        g.set(2, replica=0)
        assert g.value(replica=0) == 2
        assert g.value(replica=1) is None

    def test_histogram_buckets_are_cumulative(self):
        h = MetricsRegistry().histogram("lat", buckets=(0.01, 0.1, 1.0))
        for v in (0.005, 0.05, 0.5, 5.0):
            h.observe(v)
        (sample,) = h.samples()
        assert sample["buckets"] == {"0.01": 1, "0.1": 2, "1": 3}
        assert sample["count"] == 4
        assert sample["sum"] == pytest.approx(5.555)

    def test_histogram_rejects_bad_bounds(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.histogram("h1", buckets=())
        with pytest.raises(ValueError):
            reg.histogram("h2", buckets=(1.0, 0.5))

    def test_registry_get_or_create_and_kind_mismatch(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_prometheus_exposition_format(self):
        reg = MetricsRegistry()
        reg.counter("repro_requests_total", "requests served").inc(
            3, replica=0, bits="W4A8"
        )
        reg.histogram("repro_lat", buckets=(0.1, 1.0)).observe(0.5)
        text = reg.to_prometheus()
        assert "# HELP repro_requests_total requests served" in text
        assert "# TYPE repro_requests_total counter" in text
        assert 'repro_requests_total{bits="W4A8",replica="0"} 3' in text
        assert "# TYPE repro_lat histogram" in text
        assert 'repro_lat_bucket{le="0.1"} 0' in text
        assert 'repro_lat_bucket{le="1"} 1' in text
        assert 'repro_lat_bucket{le="+Inf"} 1' in text
        assert "repro_lat_sum 0.5" in text
        assert "repro_lat_count 1" in text

    def test_label_values_are_escaped_and_round_trip(self):
        reg = MetricsRegistry()
        hostile = 'quote:" backslash:\\ newline:\nend'
        reg.counter("c_total").inc(2, note=hostile)
        text = reg.to_prometheus()
        # Raw specials never leak into the exposition line.
        [line] = [l for l in text.splitlines() if l.startswith("c_total{")]
        assert '\\"' in line and "\\\\" in line and "\\n" in line
        assert "\n" not in line
        # Unescaping the label value recovers the original byte-for-byte
        # (the Prometheus text-format contract: \\ then \" then \n).
        value = line.split('note="', 1)[1].rsplit('"}', 1)[0]
        out, i = [], 0
        while i < len(value):
            if value[i] == "\\":
                out.append({"n": "\n", '"': '"', "\\": "\\"}[value[i + 1]])
                i += 2
            else:
                out.append(value[i])
                i += 1
        assert "".join(out) == hostile

    def test_exporters_are_deterministic(self):
        def build():
            reg = MetricsRegistry()
            # Insertion order deliberately scrambled vs name order.
            reg.gauge("z_depth").set(4, replica=1)
            reg.counter("a_total").inc(replica=1)
            reg.counter("a_total").inc(replica=0)
            return reg.to_prometheus(), reg.to_jsonl()

        assert build() == build()

    def test_jsonl_rows_parse(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(5, bits="8")
        rows = [json.loads(line) for line in reg.to_jsonl().splitlines()]
        assert rows == [{
            "kind": "counter", "labels": {"bits": "8"},
            "name": "c", "value": 5.0,
        }]


class TestMetricsRecorder:
    def test_folds_event_stream_into_metrics(self):
        reg = MetricsRegistry()
        tracer = Tracer(sinks=(MetricsRecorder(reg),))
        tracer.emit("enqueue", 0.0, request_id=0, replica=0, queue_depth=1)
        tracer.emit("route", 0.0, request_id=0, replica=0, active=2)
        tracer.emit("batch", 0.1, replica=0, bits=(4, 8), size=2,
                    start_s=0.1, finish_s=0.2, service_s=0.1, queue_depth=3)
        tracer.emit("complete", 0.2, request_id=0, replica=0, bits=(4, 8),
                    arrival_s=0.0, start_s=0.1, finish_s=0.2, latency_s=0.2)
        tracer.emit("bit_switch", 0.3, replica=0, from_bits=16,
                    to_bits=(4, 8))
        tracer.emit("autoscale", 0.4, action="scale_up",
                    from_replicas=1, to_replicas=2, reason="pressure")
        tracer.emit("fault", 0.5, fault_kind="latency_spike", factor=3.0,
                    replica=None, applied=True)
        tracer.emit("stage", 0.0, stage="serve", seconds=1.25)

        assert reg.counter("repro_requests_enqueued_total").value(
            replica=0) == 1
        assert reg.counter("repro_requests_completed_total").value(
            replica=0, bits="W4A8") == 1
        assert reg.counter("repro_batches_total").value(
            replica=0, bits="W4A8") == 1
        assert reg.counter("repro_bit_switches_total").value(replica=0) == 1
        assert reg.counter("repro_autoscale_events_total").value(
            action="scale_up") == 1
        assert reg.counter("repro_fault_events_total").value(
            fault_kind="latency_spike") == 1
        assert reg.counter("repro_pipeline_stage_seconds_total").value(
            stage="serve") == pytest.approx(1.25)
        assert reg.gauge("repro_queue_depth").value(replica=0) == 3
        assert reg.gauge("repro_active_replicas").value() == 2
        assert reg.histogram("repro_request_latency_seconds").count() == 1
        assert reg.histogram("repro_batch_size").count() == 1


# ----------------------------------------------------------------------
# Console
# ----------------------------------------------------------------------
class TestConsole:
    def test_info_respects_quiet_error_does_not(self, capsys):
        console.set_quiet(True)
        try:
            console.info("hidden")
            console.error("loud")
        finally:
            console.set_quiet(False)
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "loud" in captured.err

    def test_experiment_main_prints_to_text(self, capsys):
        class Result:
            def to_text(self):
                return "== table =="

        assert console.experiment_main(lambda: Result()) == 0
        assert "== table ==" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Sidecar artifacts + run-dir loading
# ----------------------------------------------------------------------
class TestArtifacts:
    def test_write_bundle_and_load_back(self, tmp_path):
        run_dir = str(tmp_path)
        reg = MetricsRegistry()
        tracer = Tracer(sinks=(MetricsRecorder(reg),))
        tracer.emit("enqueue", 0.0, request_id=0, replica=0, queue_depth=1)
        paths = write_obs_artifacts(run_dir, tracer=tracer, metrics=reg)
        assert set(paths) == {"trace", "metrics_prom", "metrics_jsonl"}
        for path in paths.values():
            assert os.path.isfile(path)
        assert find_trace_file(run_dir) == paths["trace"]
        assert load_run_events(run_dir) == tracer.events

    def test_missing_trace_raises_with_guidance(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="repro loadtest --obs"):
            load_run_events(str(tmp_path))


# ----------------------------------------------------------------------
# Views
# ----------------------------------------------------------------------
def _synthetic_cell_events():
    """A small two-replica run with a switch, a fault and a scale-up."""
    tracer = Tracer()
    cell = tracer.bind(scenario="bursty", policy="slo",
                       router="least_queue", replicas=2)
    t = 0.0
    for i in range(8):
        replica = i % 2
        cell.emit("enqueue", t, request_id=i, replica=replica,
                  queue_depth=1)
        cell.emit("route", t, request_id=i, replica=replica, active=2)
        t += 0.01
    for j, (replica, bits) in enumerate([(0, 8), (1, 16), (0, 16), (1, 16)]):
        start, finish = 0.1 + j * 0.05, 0.14 + j * 0.05
        cell.emit("batch", start, replica=replica, bits=bits, size=2,
                  start_s=start, finish_s=finish, service_s=0.04,
                  queue_depth=0)
        for k in range(2):
            rid = j * 2 + k
            cell.emit("complete", finish, request_id=rid, replica=replica,
                      bits=bits, arrival_s=rid * 0.01, start_s=start,
                      finish_s=finish,
                      latency_s=finish - rid * 0.01)
    cell.emit("bit_switch", 0.2, replica=0, from_bits=8, to_bits=16)
    cell.emit("autoscale", 0.22, action="scale_up", from_replicas=2,
              to_replicas=3, reason="queue_pressure=2.10")
    cell.emit("fault", 0.25, fault_kind="replica_outage", replica=1,
              applied=True, rerouted=1)
    return tracer


class TestViews:
    def test_render_events_contains_every_section(self):
        out = render_events(_synthetic_cell_events().events, title="demo")
        assert "# Observability report: demo" in out
        assert "scenario=bursty / policy=slo / router=least_queue " \
               "/ replicas=2" in out
        assert "### Per-replica timeline" in out
        assert "### Bit-occupancy Gantt" in out
        assert "### Queue depth / p95 time series" in out
        assert "### Slowest requests (top 10)" in out
        assert "### Autoscale / fault events" in out
        assert "autoscale scale_up 2->3" in out
        assert "fault replica_outage" in out

    def test_timeline_merges_consecutive_same_bits_batches(self):
        out = render_events(_synthetic_cell_events().events)
        # replica 0 served bits=8 then bits=16 -> two segments;
        # replica 1 served 16 twice -> one merged segment of 2 batches.
        assert "| 0 | 0.1000 – 0.1400 | 8 | 1 | 2 |" in out
        assert "| 1 | 0.1500 – 0.2900 | 16 | 2 | 4 |" in out

    def test_slowest_table_is_latency_sorted(self):
        out = render_events(_synthetic_cell_events().events, top=3)
        rows = [line for line in out.splitlines()
                if line.startswith("| ") and " | " in line]
        # Top slowest request is id 6 (latest batch, earliest arrival
        # in it): latency 0.29 - 0.06.
        slow_section = out.split("### Slowest requests")[1]
        data_rows = [l for l in slow_section.splitlines()
                     if l.startswith("| ") and not l.startswith("| req")
                     and "---" not in l]
        assert data_rows[0].split("|")[1].strip() == "6"
        assert rows  # sanity: tables rendered

    def test_stage_events_render_pipeline_section(self):
        tracer = Tracer()
        tracer.emit("stage", 0.0, stage="train", seconds=2.5)
        tracer.emit("stage", 2.5, stage="serve", seconds=0.5)
        out = render_events(tracer.events)
        assert "## Pipeline stages" in out
        assert "| train | 2.500 |" in out

    def test_empty_events(self):
        assert "(no events recorded)" in render_events([])

    def test_render_run_dir_reads_sidecar(self, tmp_path):
        tracer = _synthetic_cell_events()
        write_obs_artifacts(str(tmp_path), tracer=tracer)
        out = render_run_dir(str(tmp_path), buckets=4, width=16)
        assert "### Per-replica timeline" in out
        assert "scenario=bursty" in out


# ----------------------------------------------------------------------
# Tracing must not change results (the determinism contract)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def sim_fixture():
    from repro import rng
    from repro.serve import BitLatencyModel, SPNetConfig, build_sp_net
    from repro.serve.simulator import prepare_simulation

    rng.set_seed(0)
    config = SPNetConfig(
        model="resnet8", bit_widths=(4, 8, 16), num_classes=3,
        width_mult=0.25, image_size=8,
    )
    sp_net = build_sp_net(config)
    latency_model = BitLatencyModel(
        {4: 0.001, 8: 0.002, 16: 0.004}, batch_overhead_s=0.001
    )
    import dataclasses

    from repro.serve.simulator import SERVE_SCALES

    scale = dataclasses.replace(
        SERVE_SCALES["smoke"], num_requests=48, image_size=8,
        num_classes=3, bit_widths=(4, 8, 16),
    )
    return prepare_simulation(
        "bursty", scale, sp_net=sp_net, config=config,
        latency_model=latency_model,
    )


class TestTracingIsObservational:
    def test_single_engine_reports_identical_traced_vs_untraced(
        self, sim_fixture
    ):
        from repro.serve.simulator import build_report, make_engine, simulate

        def run(tracer):
            engine = make_engine(sim_fixture, "slo", tracer=tracer)
            end_s = simulate(engine, sim_fixture.requests)
            return build_report("bursty", "slo", sim_fixture.scale,
                               engine, end_s, sim_fixture.slo_s)

        untraced = run(NULL_TRACER)
        tracer = Tracer(sinks=(MetricsRecorder(MetricsRegistry()),))
        traced = run(tracer)
        assert traced.to_json_dict() == untraced.to_json_dict()
        assert len(tracer) > 0

    def test_fleet_reports_identical_traced_vs_untraced(self, sim_fixture):
        from repro.serve.cluster import (
            build_fleet_report,
            make_fleet,
            simulate_fleet,
        )

        def run(tracer):
            fleet = make_fleet(
                sim_fixture, "slo", replicas=2, router="least_queue",
                tracer=tracer,
            )
            end_s = simulate_fleet(fleet, sim_fixture.requests)
            return build_fleet_report("bursty", "slo", sim_fixture.scale,
                                      fleet, end_s, sim_fixture.slo_s)

        untraced = run(NULL_TRACER)
        tracer = Tracer()
        traced = run(tracer)
        assert traced.to_json_dict() == untraced.to_json_dict()
        kinds = {e["kind"] for e in tracer.events}
        assert {"enqueue", "route", "batch", "complete"} <= kinds

    def test_trace_jsonl_is_byte_identical_across_runs(self, sim_fixture):
        from repro.serve.cluster import make_fleet, simulate_fleet

        def run():
            tracer = Tracer()
            fleet = make_fleet(
                sim_fixture, "slo", replicas=2, router="least_queue",
                tracer=tracer,
            )
            simulate_fleet(fleet, sim_fixture.requests)
            return tracer.to_jsonl()

        assert run() == run()

    def test_engine_default_tracer_is_the_shared_null(self, sim_fixture):
        from repro.serve.simulator import make_engine

        engine = make_engine(sim_fixture, "static")
        assert engine.tracer is NULL_TRACER


# ----------------------------------------------------------------------
# CLI: repro obs
# ----------------------------------------------------------------------
class TestObsCli:
    def test_renders_run_dir(self, tmp_path, capsys):
        from repro.__main__ import main

        write_obs_artifacts(str(tmp_path), tracer=_synthetic_cell_events())
        assert main(["obs", str(tmp_path), "--buckets", "4"]) == 0
        out = capsys.readouterr().out
        assert "### Per-replica timeline" in out
        assert "### Slowest requests" in out

    def test_missing_run_dir_fails_with_guidance(self, tmp_path, capsys):
        from repro.__main__ import main

        assert main(["obs", str(tmp_path / "nope")]) == 2
        assert "repro loadtest --obs" in capsys.readouterr().err

    def test_output_flag_writes_markdown(self, tmp_path, capsys):
        from repro.__main__ import main

        write_obs_artifacts(str(tmp_path), tracer=_synthetic_cell_events())
        out_path = tmp_path / "report.md"
        assert main(["obs", str(tmp_path), "--output", str(out_path)]) == 0
        assert "### Bit-occupancy Gantt" in out_path.read_text()
