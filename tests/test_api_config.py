"""Typed pipeline configs: lossless round-trips + helpful load errors."""

import dataclasses

import pytest

from repro.api.config import (
    AutoscaleConfig,
    ConfigError,
    DeployConfig,
    ModelConfig,
    PipelineConfig,
    SearchConfig,
    ServeConfig,
    TrainConfig,
)

ALL_CONFIG_CLASSES = (
    ModelConfig, SearchConfig, TrainConfig, DeployConfig, AutoscaleConfig,
    ServeConfig, PipelineConfig,
)

NON_DEFAULT = {
    ModelConfig: dict(
        name="resnet8", bit_widths=((2, 32), 8), num_classes=3,
        width_mult=0.5, image_size=8, quantizer="dorefa",
        switchable_bn=False, activation="relu",
    ),
    SearchConfig: dict(
        space="cifar", epochs=3, batch_size=8, samples=64,
        flops_target=1e5, lambda_eff=0.25, arch_bits="highest",
        weight_mode="lowest",
    ),
    TrainConfig: dict(
        method="adabits", epochs=1, batch_size=8, lr=0.1, beta=0.5,
        augment=False, train_samples=32, test_samples=16, difficulty=1.5,
    ),
    DeployConfig: dict(
        device="zc706", metric="latency", generations=2, pipeline=True,
        warm_start=False, batch=4,
    ),
    AutoscaleConfig: dict(
        min_replicas=2, max_replicas=6, up_pressure=1.5,
        down_pressure=0.5, cooldown_batches=2.0,
    ),
    ServeConfig: dict(
        scenario="diurnal", policy="queue", num_requests=32, max_batch=4,
        slo_batches=1.5, mapper_generations=2, replicas=3,
        router="latency_aware",
        autoscale=AutoscaleConfig(min_replicas=1, max_replicas=4),
    ),
    PipelineConfig: dict(
        name="trip", seed=7, run_dir="runs/elsewhere",
        model=ModelConfig(name="resnet8", num_classes=3),
        train=TrainConfig(epochs=1),
    ),
}


class TestRoundTrips:
    @pytest.mark.parametrize("cls", ALL_CONFIG_CLASSES)
    def test_default_dict_round_trip(self, cls):
        config = cls()
        assert cls.from_dict(config.to_dict()) == config

    @pytest.mark.parametrize("cls", ALL_CONFIG_CLASSES)
    def test_non_default_dict_round_trip(self, cls):
        config = cls(**NON_DEFAULT[cls])
        again = cls.from_dict(config.to_dict())
        assert again == config

    @pytest.mark.parametrize("cls", ALL_CONFIG_CLASSES)
    def test_json_text_round_trip(self, cls):
        config = cls(**NON_DEFAULT[cls])
        assert cls.from_json(config.to_json()) == config

    def test_file_round_trip(self, tmp_path):
        config = PipelineConfig(**NON_DEFAULT[PipelineConfig])
        path = config.save(str(tmp_path / "cfg.json"))
        assert PipelineConfig.load(path) == config

    def test_bit_width_pairs_survive_json(self):
        config = ModelConfig(bit_widths=(4, (2, 32), 8))
        again = ModelConfig.from_json(config.to_json())
        assert again.bit_widths == (4, (2, 32), 8)

    def test_nested_search_section_round_trips(self):
        config = PipelineConfig(
            model=ModelConfig(name="derived"),
            search=SearchConfig(space="tiny", epochs=2),
        )
        again = PipelineConfig.from_dict(config.to_dict())
        assert again == config
        assert isinstance(again.search, SearchConfig)


class TestLoadErrors:
    def test_unknown_key_names_it_and_lists_valid_keys(self):
        with pytest.raises(ConfigError, match=r"epohcs.*epochs"):
            TrainConfig.from_dict({"epohcs": 3})

    def test_unknown_nested_key_names_owner_class(self):
        with pytest.raises(ConfigError, match="ModelConfig"):
            PipelineConfig.from_dict({"model": {"nam": "resnet8"}})

    @pytest.mark.parametrize("payload,match", [
        ({"epochs": "three"}, "must be an int"),
        ({"epochs": 1.5}, "must be an int"),
        ({"augment": 1}, "must be a bool"),
        ({"lr": "fast"}, "must be a number"),
        ({"method": 4}, "must be a string"),
    ])
    def test_wrong_types_rejected(self, payload, match):
        with pytest.raises(ConfigError, match=match):
            TrainConfig.from_dict(payload)

    @pytest.mark.parametrize("cls,field,value", [
        (ModelConfig, "quantizer", "fp4ever"),
        (ModelConfig, "name", "transformer9000"),
        (SearchConfig, "space", "galaxy"),
        (TrainConfig, "method", "alchemy"),
        (DeployConfig, "device", "tpu"),
        (ServeConfig, "scenario", "flashmob"),
        (ServeConfig, "policy", "yolo"),
        (ServeConfig, "router", "dice"),
    ])
    def test_unknown_names_list_available(self, cls, field, value):
        with pytest.raises(ConfigError, match="available"):
            cls(**{field: value})

    @pytest.mark.parametrize("cls,field", [
        (TrainConfig, "epochs"),
        (ServeConfig, "num_requests"),
        (ServeConfig, "replicas"),
        (DeployConfig, "generations"),
        (ModelConfig, "image_size"),
    ])
    def test_non_positive_rejected(self, cls, field):
        with pytest.raises(ConfigError, match="must be positive"):
            cls(**{field: 0})

    def test_nested_autoscale_section_round_trips_from_json(self):
        config = ServeConfig.from_dict({
            "replicas": 2,
            "router": "round_robin",
            "autoscale": {"min_replicas": 1, "max_replicas": 3},
        })
        assert isinstance(config.autoscale, AutoscaleConfig)
        assert config.autoscale.max_replicas == 3
        assert ServeConfig.from_json(config.to_json()) == config

    def test_replicas_outside_autoscale_range_rejected(self):
        with pytest.raises(ConfigError, match="autoscale range"):
            ServeConfig(
                replicas=8,
                autoscale=AutoscaleConfig(min_replicas=1, max_replicas=4),
            )

    def test_empty_bit_widths_rejected(self):
        with pytest.raises(ConfigError, match="bit_widths"):
            ModelConfig(bit_widths=())

    def test_malformed_bit_pair_rejected(self):
        with pytest.raises(ConfigError, match="exactly 2"):
            ModelConfig(bit_widths=((4, 8, 16),))

    def test_null_in_required_field_rejected_at_load(self):
        with pytest.raises(ConfigError, match="epochs must not be null"):
            TrainConfig.from_dict({"epochs": None})

    def test_null_allowed_only_for_optional_fields(self):
        config = PipelineConfig.from_dict({"search": None, "run_dir": None})
        assert config.search is None and config.run_dir is None

    def test_non_string_run_dir_rejected_at_load(self):
        with pytest.raises(ConfigError, match="run_dir"):
            PipelineConfig.from_dict({"run_dir": 123})

    def test_non_dict_payload_rejected(self):
        with pytest.raises(ConfigError, match="object/dict"):
            ModelConfig.from_dict([1, 2, 3])

    def test_invalid_json_text(self):
        with pytest.raises(ConfigError, match="invalid JSON"):
            PipelineConfig.from_json("{nope")

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigError, match="cannot read"):
            PipelineConfig.load(str(tmp_path / "missing.json"))


class TestPipelineCrossValidation:
    def test_derived_model_requires_search_section(self):
        with pytest.raises(ConfigError, match="requires a 'search'"):
            PipelineConfig(model=ModelConfig(name="derived"))

    def test_search_section_requires_derived_model(self):
        with pytest.raises(ConfigError, match="model.name 'derived'"):
            PipelineConfig(
                model=ModelConfig(name="resnet8", num_classes=3),
                search=SearchConfig(),
            )

    def test_replace_keeps_validation(self):
        config = PipelineConfig()
        with pytest.raises(ConfigError):
            dataclasses.replace(config, serve=ServeConfig(policy="nope"))

    def test_example_smoke_config_is_valid(self):
        from pathlib import Path

        example = (
            Path(__file__).resolve().parent.parent
            / "examples" / "pipeline_smoke.json"
        )
        config = PipelineConfig.load(str(example))
        assert config.model.name == "derived"
        assert config.search is not None
        assert PipelineConfig.from_dict(config.to_dict()) == config
