"""Pipeline orchestrator: artifact chaining, stage independence, CLI."""

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.__main__ import main
from repro.api.config import (
    DeployConfig,
    ModelConfig,
    PipelineConfig,
    SearchConfig,
    ServeConfig,
    TrainConfig,
)
from repro.api.pipeline import STAGES, Pipeline, PipelineError, run_pipeline

EXAMPLE = (
    Path(__file__).resolve().parent.parent / "examples"
    / "pipeline_smoke.json"
)


def zoo_config(**overrides):
    """Smallest sensible zoo-model pipeline (no architecture search)."""
    base = dict(
        name="unit",
        seed=0,
        model=ModelConfig(
            name="resnet8", bit_widths=(4, 8), num_classes=3,
            width_mult=0.25, image_size=8,
        ),
        train=TrainConfig(
            epochs=1, batch_size=16, train_samples=64, test_samples=32,
        ),
        deploy=DeployConfig(device="edge", generations=2),
        serve=ServeConfig(
            scenario="constant", policy="static", num_requests=24,
            max_batch=8, mapper_generations=2,
        ),
    )
    base.update(overrides)
    return PipelineConfig(**base)


def derived_config():
    """Tiny SP-NAS pipeline exercising the generate stage for real."""
    return PipelineConfig(
        name="unit-derived",
        model=ModelConfig(
            name="derived", bit_widths=(4, 8), num_classes=3, image_size=8,
        ),
        search=SearchConfig(space="tiny", epochs=1, batch_size=16, samples=48),
        train=TrainConfig(
            epochs=1, batch_size=16, train_samples=48, test_samples=24,
        ),
        deploy=DeployConfig(device="edge", generations=2),
        serve=ServeConfig(
            scenario="bursty", policy="slo", num_requests=24,
            max_batch=8, mapper_generations=2,
        ),
    )


class TestEndToEnd:
    def test_zoo_pipeline_chains_all_artifacts(self, tmp_path):
        result = run_pipeline(zoo_config(), run_dir=str(tmp_path / "run"))
        assert result.stages_run == list(STAGES)
        for stage, path in result.artifacts.items():
            assert os.path.exists(path), stage

        arch = json.loads(Path(result.artifacts["generate"]).read_text())
        assert arch["source"] == "zoo" and arch["model"] == "resnet8"

        train = json.loads(Path(result.artifacts["train"]).read_text())
        assert [e["bits"] for e in train["accuracies"]] == [4, 8]
        assert os.path.exists(tmp_path / "run" / "checkpoint.npz")

        deploy = json.loads(Path(result.artifacts["deploy"]).read_text())
        assert [m["bits"] for m in deploy["mappings"]] == [4, 8]
        assert all(m["latency_s"] > 0 for m in deploy["mappings"])

        serve = json.loads(Path(result.artifacts["serve"]).read_text())
        # The serve stage must price the engine from the deploy artifact.
        assert serve["latency_source"] == "deploy"
        assert serve["reports"][0]["policy"] == "static"
        assert serve["reports"][0]["num_requests"] == 24

        # The run dir documents its own config + summary.
        assert (tmp_path / "run" / "config.json").exists()
        summary = json.loads(
            (tmp_path / "run" / "pipeline_report.json").read_text()
        )
        assert summary["stages_run"] == list(STAGES)

    def test_derived_pipeline_and_checkpoint_round_trip(self, tmp_path):
        from repro.serve.checkpoint import load_checkpoint
        from repro.tensor import Tensor, no_grad

        run_dir = str(tmp_path / "run")
        result = run_pipeline(derived_config(), run_dir=run_dir)
        arch = json.loads(Path(result.artifacts["generate"]).read_text())
        assert arch["source"] == "spnas"
        assert len(arch["specs"]) == 6  # tiny space: 3 stages x 2 layers

        # The checkpoint must rebuild the searched topology bit-for-bit.
        sp_net, config = load_checkpoint(os.path.join(run_dir, "checkpoint"))
        assert config.model == "derived"
        assert config.arch["space"] == "tiny"
        again, _ = load_checkpoint(os.path.join(run_dir, "checkpoint"))
        x = np.random.default_rng(0).normal(size=(2, 3, 8, 8)).astype(
            np.float32
        )
        sp_net.eval(), again.eval()
        with no_grad():
            for bits in sp_net.bit_widths:
                np.testing.assert_array_equal(
                    sp_net(Tensor(x), bits=bits).data,
                    again(Tensor(x), bits=bits).data,
                )

    def test_fleet_serve_stage_materializes_replicas(self, tmp_path):
        """serve.replicas > 1 runs the fleet path: replicas built from
        the stage checkpoint, fleet metrics + per-replica occupancy and
        autoscale events in the artifact."""
        from repro.api.config import AutoscaleConfig

        config = zoo_config(
            serve=ServeConfig(
                scenario="bursty", policy="slo", num_requests=48,
                max_batch=8, mapper_generations=2,
                replicas=2, router="least_queue",
                autoscale=AutoscaleConfig(min_replicas=1, max_replicas=4),
            ),
        )
        result = run_pipeline(config, run_dir=str(tmp_path / "run"))
        serve = json.loads(Path(result.artifacts["serve"]).read_text())
        assert serve["mode"] == "fleet"
        assert serve["latency_source"] == "deploy"
        (report,) = serve["reports"]
        assert report["router"] == "least_queue"
        assert report["replicas"] == 2 and report["max_replicas"] == 4
        assert report["autoscaled"] is True
        assert len(report["per_replica"]) >= 2
        assert isinstance(report["scale_events"], list)
        for key in ("latency_p50_s", "latency_p95_s", "latency_p99_s"):
            assert report[key] > 0
        assert sum(report["occupancy"].values()) == 48

    def test_single_engine_serve_stage_reports_single_mode(self, tmp_path):
        result = run_pipeline(zoo_config(), run_dir=str(tmp_path / "run"))
        serve = json.loads(Path(result.artifacts["serve"]).read_text())
        assert serve["mode"] == "single"

    def test_generate_stage_is_deterministic(self, tmp_path):
        config = derived_config()
        first = Pipeline(config, run_dir=str(tmp_path / "a")).generate()
        second = Pipeline(config, run_dir=str(tmp_path / "b")).generate()
        assert first["labels"] == second["labels"]


class TestStageIndependence:
    def test_deploy_without_checkpoint_fails_clearly(self, tmp_path):
        pipe = Pipeline(zoo_config(), run_dir=str(tmp_path / "empty"))
        with pytest.raises(PipelineError, match="train"):
            pipe.deploy()

    def test_train_for_derived_without_architecture_fails(self, tmp_path):
        pipe = Pipeline(derived_config(), run_dir=str(tmp_path / "empty"))
        with pytest.raises(PipelineError, match="architecture"):
            pipe.train()

    def test_stages_resume_across_pipeline_instances(self, tmp_path):
        run_dir = str(tmp_path / "run")
        config = zoo_config()
        Pipeline(config, run_dir=run_dir).run(stages=["generate", "train"])
        # A fresh instance (fresh process in real life) picks up the
        # checkpoint from disk.
        result = Pipeline(config, run_dir=run_dir).run(stages=["serve"])
        assert result.stages_run == ["serve"]
        serve = json.loads(Path(result.artifacts["serve"]).read_text())
        # deploy never ran, so serving priced its own latency search.
        assert serve["latency_source"] == "serve-search"

    def test_stale_deploy_artifact_fails_clearly(self, tmp_path):
        """A deploy report that doesn't price every served bit-width must
        raise PipelineError guidance, not a raw KeyError."""
        run_dir = str(tmp_path / "run")
        config = zoo_config()
        pipe = Pipeline(config, run_dir=run_dir)
        pipe.run(stages=["generate", "train", "deploy"])
        deploy_path = pipe.artifact_path("deploy_report.json")
        report = json.loads(Path(deploy_path).read_text())
        report["mappings"] = report["mappings"][:1]  # drop the 8-bit row
        Path(deploy_path).write_text(json.dumps(report))
        with pytest.raises(PipelineError, match="re-run the deploy stage"):
            pipe.serve()

    def test_unknown_stage_rejected(self, tmp_path):
        pipe = Pipeline(zoo_config(), run_dir=str(tmp_path / "run"))
        with pytest.raises(PipelineError, match="unknown stage"):
            pipe.run(stages=["ship-it"])

    def test_stages_execute_in_pipeline_order(self, tmp_path):
        pipe = Pipeline(zoo_config(), run_dir=str(tmp_path / "run"))
        result = pipe.run(stages=["train", "generate"])  # order-insensitive
        assert result.stages_run == ["generate", "train"]


class TestPipelineCLI:
    def test_validate_ok_exit_zero(self, capsys):
        assert main(["pipeline", "validate", "--config", str(EXAMPLE)]) == 0
        assert "ok:" in capsys.readouterr().out

    def test_validate_unknown_key_exit_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"trian": {}}')
        assert main(["pipeline", "validate", "--config", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "invalid pipeline config" in err and "trian" in err

    def test_validate_malformed_json_exit_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        assert main(["pipeline", "validate", "--config", str(bad)]) == 2
        assert "invalid JSON" in capsys.readouterr().err

    def test_validate_missing_file_exit_two(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.json")
        assert main(["pipeline", "validate", "--config", missing]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_show_prints_normalised_config(self, capsys):
        assert main(["pipeline", "show", "--config", str(EXAMPLE)]) == 0
        out = capsys.readouterr().out
        assert '"bit_widths"' in out and "generate -> train" in out

    def test_run_unknown_stage_exit_two(self, tmp_path, capsys):
        assert main([
            "pipeline", "run", "--config", str(EXAMPLE),
            "--run-dir", str(tmp_path), "--stages", "deplyo",
        ]) == 2
        assert "unknown stage" in capsys.readouterr().err

    def test_run_degenerate_stages_exit_two(self, tmp_path, capsys):
        """`--stages ','` must not silently fall back to running all
        four stages."""
        assert main([
            "pipeline", "run", "--config", str(EXAMPLE),
            "--run-dir", str(tmp_path), "--stages", " , ",
        ]) == 2
        assert "names no valid stage" in capsys.readouterr().err

    def test_run_missing_upstream_exit_one(self, tmp_path, capsys):
        assert main([
            "pipeline", "run", "--config", str(EXAMPLE),
            "--run-dir", str(tmp_path / "empty"), "--stages", "deploy",
        ]) == 1
        assert "pipeline failed" in capsys.readouterr().err

    @pytest.mark.slow
    def test_example_config_runs_end_to_end(self, tmp_path, capsys):
        assert main([
            "pipeline", "run", "--config", str(EXAMPLE),
            "--run-dir", str(tmp_path / "run"),
        ]) == 0
        out = capsys.readouterr().out
        assert "generate -> train -> deploy -> serve" in out
