"""Model zoo: shapes, FLOPs accounting, profiler extraction."""

import numpy as np
import pytest

from repro.nn import count_flops, models, profile_model
from repro.nn.blocks import BasicBlock, InvertedResidual
from repro.nn.factory import FloatFactory
from repro.tensor import Tensor


def image(n=2, size=16):
    return Tensor(np.random.default_rng(0).normal(
        size=(n, 3, size, size)).astype(np.float32))


class TestBlocks:
    def test_inverted_residual_shape_stride1(self):
        block = InvertedResidual(FloatFactory("relu6"), 8, 8, stride=1)
        x = Tensor(np.zeros((1, 8, 8, 8), dtype=np.float32))
        assert block(x).shape == (1, 8, 8, 8)

    def test_inverted_residual_residual_used_only_when_legal(self):
        same = InvertedResidual(FloatFactory(), 8, 8, stride=1)
        diff = InvertedResidual(FloatFactory(), 8, 16, stride=1)
        strided = InvertedResidual(FloatFactory(), 8, 8, stride=2)
        assert same.use_residual
        assert not diff.use_residual
        assert not strided.use_residual

    def test_inverted_residual_expansion_one_skips_expand(self):
        block = InvertedResidual(FloatFactory(), 8, 8, expansion=1)
        assert len(block.body) == 2

    def test_inverted_residual_rejects_bad_stride(self):
        with pytest.raises(ValueError):
            InvertedResidual(FloatFactory(), 8, 8, stride=3)

    def test_basic_block_shapes(self):
        x = Tensor(np.zeros((1, 16, 8, 8), dtype=np.float32))
        assert BasicBlock(FloatFactory(), 16, 16)(x).shape == (1, 16, 8, 8)
        assert BasicBlock(FloatFactory(), 16, 32, stride=2)(x).shape \
            == (1, 32, 4, 4)


class TestModels:
    def test_mobilenetv2_tiny_output(self):
        model = models.mobilenet_v2(num_classes=7, setting="tiny")
        assert model(image()).shape == (2, 7)

    def test_mobilenetv2_rejects_unknown_setting(self):
        with pytest.raises(ValueError, match="setting"):
            models.mobilenet_v2(setting="bogus")

    def test_mobilenetv2_width_scaling_reduces_params(self):
        big = models.mobilenet_v2(setting="tiny", width_mult=1.0)
        small = models.mobilenet_v2(setting="tiny", width_mult=0.5)
        assert small.num_parameters() < big.num_parameters()

    def test_resnet_depths(self):
        assert models.resnet38().depth == 38
        assert models.resnet74().depth == 74
        assert models.resnet8().depth == 8

    def test_resnet8_forward(self):
        model = models.resnet8(num_classes=5, width_mult=0.5)
        assert model(image()).shape == (2, 5)

    def test_resnet18_forward(self):
        model = models.resnet18(num_classes=9, width_mult=0.25)
        assert model(image(size=24)).shape == (2, 9)


class TestProfiler:
    def test_count_flops_positive_and_scales_with_input(self):
        model = models.resnet8(width_mult=0.5)
        f16 = count_flops(model, 16)
        f32 = count_flops(model, 32)
        assert f16 > 0
        assert f32 > 3 * f16  # roughly quadratic in resolution

    def test_profile_records_all_convs_and_linears(self):
        model = models.resnet8(width_mult=0.5)
        prof = profile_model(model, 16)
        kinds = [r.kind for r in prof.records]
        # stem + 3 stages x (2 convs + maybe shortcut) + classifier
        assert kinds.count("linear") == 1
        assert kinds.count("conv") >= 7

    def test_record_macs_match_layer_flops(self):
        model = models.resnet8(width_mult=0.5)
        prof = profile_model(model, 16)
        rec = prof.records[0]  # stem conv on 16x16
        assert rec.macs == rec.out_channels * 16 * 16 * rec.in_channels * 9

    def test_depthwise_macs_divide_by_groups(self):
        model = models.mobilenet_v2(setting="tiny")
        prof = profile_model(model, 16)
        dw = [r for r in prof.records if r.groups > 1]
        assert dw, "MobileNetV2 must contain depthwise layers"
        r = dw[0]
        assert r.macs == r.out_channels * r.output_hw ** 2 * (
            r.kernel_size ** 2 * r.in_channels // r.groups
        )

    def test_profiler_restores_training_mode(self):
        model = models.resnet8()
        model.train()
        profile_model(model, 16)
        assert model.training
