"""End-to-end integration: the full InstantNet pipeline at toy scale.

These tests chain every major subsystem the way the paper's Fig. 1
describes — SP-NAS search -> CDT training -> AutoMapper deployment —
and assert the cross-module contracts rather than absolute quality.
"""

import numpy as np
import pytest

from repro import rng as rng_mod
from repro.baselines import train_cdt
from repro.baselines.dataflows import eyeriss_row_stationary
from repro.core import TrainConfig, evaluate_all_bits
from repro.core.automapper import AutoMapper, AutoMapperConfig
from repro.core.spnas import (
    SPNASConfig,
    build_derived,
    search_spnas,
    tiny_search_space,
)
from repro.data import cifar100_like
from repro.hardware import (
    edge_asic,
    evaluate_network,
    extract_workloads,
)

BITS = [4, 32]
NUM_CLASSES = 5


@pytest.fixture(scope="module")
def pipeline_artifacts():
    """Run the full generation+deployment pipeline once for this module."""
    rng_mod.set_seed(0)
    train, test = cifar100_like(num_train=128, num_test=48, image_size=12,
                                num_classes=NUM_CLASSES, difficulty=2.0)
    space = tiny_search_space(12)
    search = search_spnas(
        space, BITS, NUM_CLASSES, train,
        SPNASConfig(epochs=1, batch_size=32, flops_target=2e5, lambda_eff=1.0),
    )
    trained = train_cdt(
        build_derived(search, NUM_CLASSES), BITS, train, test,
        TrainConfig(epochs=2, batch_size=32),
    )
    return search, trained, test


class TestGenerationPhase:
    def test_search_produces_complete_architecture(self, pipeline_artifacts):
        search, _, _ = pipeline_artifacts
        assert len(search.specs) == search.space.num_searchable_layers
        assert search.flops > 0

    def test_trained_network_reports_all_bits(self, pipeline_artifacts):
        _, trained, test = pipeline_artifacts
        accs = evaluate_all_bits(trained.sp_net, test)
        assert set(accs) == set(BITS)


class TestDeploymentPhase:
    def test_mapping_searched_network_per_bitwidth(self, pipeline_artifacts):
        _, trained, _ = pipeline_artifacts
        device = edge_asic()
        mapper = AutoMapper(device, AutoMapperConfig(generations=4,
                                                     seed_key="int-test"))
        edps = {}
        for bits in BITS:
            workloads = extract_workloads(
                trained.sp_net.model, 12, bits=bits if bits != 32 else 16
            )
            result = mapper.search_network(workloads, pipeline=False)
            assert result.network_cost.valid
            edps[bits] = result.edp
        # Lower precision must be cheaper to execute.
        assert edps[4] < edps[32]

    def test_automapper_beats_expert_mapping_on_searched_net(
        self, pipeline_artifacts
    ):
        _, trained, _ = pipeline_artifacts
        device = edge_asic()
        workloads = extract_workloads(trained.sp_net.model, 12, bits=8)
        mapper = AutoMapper(device, AutoMapperConfig(generations=10,
                                                     seed_key="int-beat"))
        ours = mapper.search_network(workloads, pipeline=False)
        expert_flows = [eyeriss_row_stationary(w, device) for w in workloads]
        expert = evaluate_network(workloads, expert_flows, device, False)
        assert ours.edp <= expert.edp


class TestSwitchingContract:
    def test_instant_switching_preserves_weights(self, pipeline_artifacts):
        """Switching precision must not touch the shared weights — the
        defining property of an SP-Net (no fine-tuning on switch)."""
        _, trained, _ = pipeline_artifacts
        sp = trained.sp_net
        from repro.quant import QuantConv2d
        conv = next(m for m in sp.model.modules() if isinstance(m, QuantConv2d))
        before = conv.weight.data.copy()
        sp.set_bitwidth(4)
        sp.set_bitwidth(32)
        sp.set_bitwidth(4)
        assert np.array_equal(conv.weight.data, before)
