"""Fixture tree for the spawn rule."""
