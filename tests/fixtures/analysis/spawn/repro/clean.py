"""No multiprocessing import: the rule never looks here."""

def fake_process(target=None):
    return target


fake_process(target=lambda: None)
