"""Every spawn-boundary pickling mistake, next to the safe idioms."""

import multiprocessing as mp


def worker_main(spec, inbox):
    return spec, inbox


def start(q):
    ctx = mp.get_context("spawn")

    def local_worker():
        return None

    ctx.Process(target=lambda: None)               # bad: lambda target
    ctx.Process(target=local_worker)               # bad: nested def
    handle = object()
    ctx.Process(target=handle.run)                 # bad: bound method
    ctx.Process(target=worker_main, args=(1, q))   # ok: module-level

    q.put(lambda x: x)                             # bad: lambda payload
    q.put(open("state.bin"))                       # bad: open handle
    q.put(local_worker)                            # bad: local callable
    q.put(local_worker())                          # ok: call result
    q.put((1, "msg"))                              # ok: plain data
