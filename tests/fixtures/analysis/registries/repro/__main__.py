"""CLI with a hardcoded registry entry name in choices."""

import argparse


def build():
    parser = argparse.ArgumentParser()
    parser.add_argument("--model", choices=("good", "claimed"))
    parser.add_argument("--format", choices=("text", "json"))
    return parser
