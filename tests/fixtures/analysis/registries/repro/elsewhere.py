"""A module claiming a lazy entry that points somewhere else."""

from .api.registry import MODELS


@MODELS.register("hijacked")
def hijacked_fn():
    return 4
