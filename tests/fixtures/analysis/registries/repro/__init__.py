"""Fixture tree for the registries rule."""
