"""Defining module for the mini manifest."""

from .api.registry import MODELS

TABLE = {"present": 1}


def good_fn():
    return 1


@MODELS.register("claimed")
def claimed_fn():
    return 2


@MODELS.register("unclaimed")
def surprise_fn():
    return 3
