"""Mini manifest with one of each parity violation."""


class Registry:
    def __init__(self, kind):
        self.kind = kind

    def register_lazy(self, name, spec, key=None):
        pass

    def register(self, name):
        def deco(obj):
            return obj
        return deco


MODELS = Registry("model")
MODELS.register_lazy("good", "repro.zoo:good_fn")
MODELS.register_lazy("ghost", "repro.zoo:missing_fn")
MODELS.register_lazy("dangling", "repro.nowhere:fn")
MODELS.register_lazy("keyed_ok", "repro.zoo:TABLE", key="present")
MODELS.register_lazy("keyed_bad", "repro.zoo:TABLE", key="absent")
MODELS.register_lazy("claimed", "repro.zoo:claimed_fn")
MODELS.register_lazy("hijacked", "repro.zoo:hijacked_fn")
for _name in ("a", "b"):
    MODELS.register_lazy(_name, f"repro.zoo:{_name}")

ORPHANS = Registry("orphan")

REGISTRIES = {"models": MODELS}
