"""Serve (layer 3) importing core (layer 2) is fine: downward."""

from ..core import trainer  # noqa: F401
