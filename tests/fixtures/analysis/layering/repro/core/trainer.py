"""Core (layer 2) reaching up into the real serving plane (layer 4)."""

from ..serving import pool            # bad: upward import

WORKERS = pool.SIZE
