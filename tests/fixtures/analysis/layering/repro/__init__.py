"""Fixture tree for the layering rule."""
