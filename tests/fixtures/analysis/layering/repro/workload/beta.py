from .alpha import A                   # bad half: cycle alpha <-> beta

B = 1


def late():
    # Deferred imports never count toward cycles.
    from .alpha import A as _a
    return _a
