from .beta import B                    # bad half: cycle alpha <-> beta

A = B + 1
