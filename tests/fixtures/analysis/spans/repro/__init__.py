"""Fixture tree for the spans rule."""
