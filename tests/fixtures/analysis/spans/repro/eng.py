"""Emits two declared kinds and one typo."""


def run(tracer, events):
    tracer.emit("alpha", 0.0)
    tracer.emit("beta", 1.0)
    tracer.emit("zeta", 2.0)                # bad: undeclared kind
    for event in events:
        tracer.emit(event["kind"], event["time_s"])   # dynamic: skipped
