"""Counts alpha events only."""


def consume(event):
    return 1 if event["kind"] == "alpha" else 0
