"""Three-kind vocabulary; gamma is dead weight."""

EVENT_KINDS = (
    "alpha",
    "beta",
    "gamma",
)
