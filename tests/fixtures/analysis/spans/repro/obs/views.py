"""Consumes alpha/beta, plus one kind that does not exist."""


def render(events):
    out = []
    for event in events:
        kind = event["kind"]
        if kind == "alpha":
            out.append("a")
        elif event["kind"] in ("beta",):
            out.append("b")
        elif kind == "delta":               # bad: undeclared kind
            out.append("?")
    return out
