"""Fixture tree for the determinism rule."""
