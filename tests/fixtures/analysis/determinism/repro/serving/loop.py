"""Real plane: the allowlist makes wall clocks fine here."""

import time

START = time.time()
