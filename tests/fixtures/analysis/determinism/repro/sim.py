"""Deterministic plane: every wall-clock / global-RNG idiom is bad."""

import random
import time
from time import perf_counter

import numpy as np

T0 = time.time()                       # bad: wall clock
TICK = perf_counter()                  # bad: from-import resolves too
CLOCK = time.monotonic                 # bad: bare reference, not a call
DRAW = np.random.rand(3)               # bad: numpy global RNG
COIN = random.random()                 # bad: stdlib global singleton
GEN = np.random.default_rng()          # bad: OS-entropy seed

SEEDED = np.random.default_rng(7)      # ok: explicit seed
LOCAL = random.Random(3)               # ok: seeded instance
NOW = time.time()  # repro: allow[determinism] fixture suppression
