"""The sanctioned seam (mirrors repro.obs.wallclock)."""

import time


def wall_clock_s():
    return time.time()
