"""Strict virtual plane: even the wallclock seam is banned."""

from ..obs.wallclock import wall_clock_s

STAMP = wall_clock_s()                 # bad: seam banned under serve/
