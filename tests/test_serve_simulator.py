"""Traffic simulator: determinism, scenario shapes, policy behaviour."""

import json

import numpy as np
import pytest

from repro import rng as rng_mod
from repro.serve import (
    SERVE_SCALES,
    BitLatencyModel,
    ServeScale,
    format_reports,
    generate_requests,
    run_serve_sim,
)
from repro.serve.simulator import get_serve_scale


TINY = ServeScale(
    name="tiny", num_requests=72, image_size=8, num_classes=3,
    width_mult=0.25, bit_widths=(4, 8, 16), max_batch=8,
    mapper_generations=2,
)


def fixed_latency_model():
    return BitLatencyModel(
        {4: 0.001, 8: 0.002, 16: 0.004}, batch_overhead_s=0.001
    )


class TestScales:
    def test_registered_scales(self):
        assert set(SERVE_SCALES) == {"smoke", "default"}
        assert get_serve_scale("smoke").name == "smoke"
        assert get_serve_scale(TINY) is TINY

    def test_unknown_scale(self):
        with pytest.raises(ValueError):
            get_serve_scale("galactic")


class TestTraffic:
    def test_deterministic_arrivals(self):
        model = fixed_latency_model()
        rng_mod.set_seed(5)
        a = generate_requests("bursty", TINY, model, 16)
        rng_mod.set_seed(5)
        b = generate_requests("bursty", TINY, model, 16)
        assert [r.arrival_s for r in a] == [r.arrival_s for r in b]
        np.testing.assert_array_equal(a[0].image, b[0].image)
        assert [r.label for r in a] == [r.label for r in b]

    def test_arrivals_sorted_and_labelled(self):
        model = fixed_latency_model()
        requests = generate_requests("diurnal", TINY, model, 16)
        arrivals = [r.arrival_s for r in requests]
        assert arrivals == sorted(arrivals)
        assert all(0 <= r.label < TINY.num_classes for r in requests)

    def test_bursty_has_tighter_gaps_than_constant(self):
        model = fixed_latency_model()
        bursty = generate_requests("bursty", TINY, model, 16)
        constant = generate_requests("constant", TINY, model, 16)
        min_gap = lambda reqs: np.diff([r.arrival_s for r in reqs]).min()
        assert min_gap(bursty) < min_gap(constant)

    def test_unknown_scenario(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            generate_requests("flashmob", TINY, fixed_latency_model(), 16)


@pytest.mark.slow
class TestEndToEnd:
    def test_run_is_deterministic(self):
        a = run_serve_sim("bursty", "all", TINY, seed=3)
        b = run_serve_sim("bursty", "all", TINY, seed=3)
        assert json.dumps([r.to_json_dict() for r in a], sort_keys=True) == \
            json.dumps([r.to_json_dict() for r in b], sort_keys=True)

    def test_bursty_slo_switches_static_does_not(self):
        reports = {
            r.policy: r for r in run_serve_sim("bursty", "all", TINY, seed=0)
        }
        static, slo = reports["static"], reports["slo"]
        # Static serves everything at the highest precision...
        assert static.occupancy["16"] == TINY.num_requests
        assert static.switches == 0
        # ...while the SLO policy demonstrably sheds precision under the
        # bursts and tames the tail.
        low_precision = slo.occupancy["4"] + slo.occupancy["8"]
        assert low_precision > 0
        assert slo.switches > 0
        assert slo.latency_p95_s < static.latency_p95_s
        assert slo.slo_violations <= static.slo_violations

    def test_report_shape(self):
        (report,) = run_serve_sim("constant", "static", TINY, seed=1)
        assert report.num_requests == TINY.num_requests
        assert report.throughput_rps > 0
        assert (
            report.latency_p50_s
            <= report.latency_p95_s
            <= report.latency_p99_s
            <= report.latency_max_s
        )
        assert sum(report.occupancy.values()) == TINY.num_requests
        assert report.accuracy is not None
        assert set(report.accuracy_per_bit) == {"4", "8", "16"}
        text = format_reports([report])
        assert "constant" in text and "static" in text

    def test_single_policy_selection(self):
        reports = run_serve_sim("constant", "queue", TINY, seed=0)
        assert [r.policy for r in reports] == ["queue"]

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            run_serve_sim("tsunami", "all", TINY, seed=0)

    def test_existing_model_gets_matching_traffic(self):
        """A passed model's config overrides the scale's model fields."""
        from repro.serve import SPNetConfig, build_sp_net
        from repro.serve.simulator import prepare_simulation

        config = SPNetConfig(
            model="resnet8", bit_widths=(4, 8), num_classes=2,
            width_mult=0.25, image_size=8,
        )
        sp_net = build_sp_net(config)
        fixture = prepare_simulation("constant", "smoke",
                                     sp_net=sp_net, config=config)
        req = fixture.requests[0]
        assert req.image.shape == (3, 8, 8)        # config, not smoke's 12
        assert all(r.label < 2 for r in fixture.requests)
        assert set(fixture.latency_model.per_image_s) == {4, 8}

    def test_custom_config_builds_matching_fresh_model(self):
        """config without sp_net customises the freshly built model."""
        from repro.serve import SPNetConfig
        from repro.serve.simulator import prepare_simulation

        config = SPNetConfig(
            model="resnet8", bit_widths=(2, 4), num_classes=2,
            width_mult=0.25, image_size=8,
        )
        fixture = prepare_simulation("constant", "smoke", config=config)
        assert fixture.sp_net.bit_widths == (2, 4)
        assert fixture.requests[0].image.shape == (3, 8, 8)
        assert set(fixture.latency_model.per_image_s) == {2, 4}

    def test_existing_model_requires_config(self):
        from repro.serve import SPNetConfig, build_sp_net
        from repro.serve.simulator import prepare_simulation

        config = SPNetConfig(
            model="resnet8", bit_widths=(4, 8), num_classes=2,
            width_mult=0.25, image_size=8,
        )
        with pytest.raises(ValueError, match="SPNetConfig"):
            prepare_simulation("constant", "smoke",
                               sp_net=build_sp_net(config))
