"""Real serving plane: HTTP plumbing, pool lifecycle, sim parity.

Two tiers in one file:

* unmarked tests cover the in-process pieces (HTTP parser/framing,
  image codec, virtual clock, comparison verdicts) and run with tier-1;
* ``@pytest.mark.real_plane`` tests spawn actual worker processes and
  sockets — seconds each for process start + engine warmup — and are
  deselected by default (see pytest.ini); ``scripts/ci.sh`` runs them
  with ``pytest -m real_plane``.

The real-plane tests use a hand-built :class:`BitLatencyModel` whose
service times dwarf any real forward pass, so the pool's auto
``time_scale`` resolves to 1.0 and wall-clock timings are predictable.
"""

import asyncio
import json

import numpy as np
import pytest

from repro.serve.checkpoint import SPNetConfig, build_sp_net, save_checkpoint
from repro.serve.engine import BitLatencyModel
from repro.serving import (
    Gateway,
    HTTPConnectionHandler,
    HTTPError,
    PoolSaturated,
    PoolStopped,
    VirtualClock,
    WorkerCrashed,
    WorkerPool,
    build_pool_report,
    compare_reports,
    decode_image,
    encode_image,
    http_request_json,
    json_response,
)

IMAGE_SHAPE = (3, 8, 8)


def make_image(seed=0):
    return np.random.default_rng(seed).standard_normal(
        IMAGE_SHAPE
    ).astype(np.float32)


# ----------------------------------------------------------------------
# HTTP plumbing (in-process: a live asyncio server, no worker pool)
# ----------------------------------------------------------------------
async def _echo_server():
    handler = HTTPConnectionHandler()

    async def echo(request):
        return json_response({
            "path": request.path,
            "query": request.query,
            "body": request.json() if request.body else None,
        })

    async def boom(request):
        raise RuntimeError("kaput")

    handler.route("POST", "/echo", echo)
    handler.route("GET", "/echo", echo)
    handler.route("GET", "/boom", boom)
    server = await asyncio.start_server(handler, host="127.0.0.1", port=0)
    return server, server.sockets[0].getsockname()[1]


class TestHTTPPlumbing:
    def test_round_trip_and_query_parsing(self):
        async def scenario():
            server, port = await _echo_server()
            try:
                status, body = await http_request_json(
                    "127.0.0.1", port, "POST", "/echo?a=1&a=2&b=x",
                    {"k": [1, 2]},
                )
            finally:
                server.close()
                await server.wait_closed()
            return status, body

        status, body = asyncio.run(scenario())
        assert status == 200
        assert body == {
            "path": "/echo",
            "query": {"a": ["1", "2"], "b": ["x"]},
            "body": {"k": [1, 2]},
        }

    def test_unknown_route_404_wrong_method_405(self):
        async def scenario():
            server, port = await _echo_server()
            try:
                missing = await http_request_json(
                    "127.0.0.1", port, "GET", "/nope"
                )
                wrong = await http_request_json(
                    "127.0.0.1", port, "DELETE", "/echo"
                )
            finally:
                server.close()
                await server.wait_closed()
            return missing, wrong

        (missing_status, _), (wrong_status, _) = asyncio.run(scenario())
        assert missing_status == 404
        assert wrong_status == 405

    def test_handler_exception_is_500_not_connection_loss(self):
        async def scenario():
            server, port = await _echo_server()
            try:
                status, body = await http_request_json(
                    "127.0.0.1", port, "GET", "/boom"
                )
                again, _ = await http_request_json(
                    "127.0.0.1", port, "GET", "/echo"
                )
            finally:
                server.close()
                await server.wait_closed()
            return status, body, again

        status, body, again = asyncio.run(scenario())
        assert status == 500
        assert "kaput" in body["error"]
        assert again == 200

    def test_keep_alive_serves_multiple_requests(self):
        async def scenario():
            server, port = await _echo_server()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port
                )
                responses = []
                for _ in range(2):
                    writer.write(
                        b"GET /echo HTTP/1.1\r\n"
                        b"Host: t\r\nContent-Length: 0\r\n\r\n"
                    )
                    await writer.drain()
                    head = await reader.readuntil(b"\r\n\r\n")
                    length = int(
                        [line for line in head.split(b"\r\n")
                         if line.lower().startswith(b"content-length")][0]
                        .split(b":")[1]
                    )
                    responses.append(await reader.readexactly(length))
                writer.close()
                await writer.wait_closed()
            finally:
                server.close()
                await server.wait_closed()
            return responses

        responses = asyncio.run(scenario())
        assert len(responses) == 2
        assert all(json.loads(r)["path"] == "/echo" for r in responses)

    def test_malformed_json_body_maps_to_400(self):
        from repro.serving.http import HTTPRequest

        request = HTTPRequest(
            method="POST", path="/x", query={}, headers={},
            body=b"{nope",
        )
        with pytest.raises(HTTPError) as excinfo:
            request.json()
        assert excinfo.value.status == 400


class TestImageCodec:
    def test_round_trip(self):
        image = make_image(3)
        decoded = decode_image(encode_image(image))
        np.testing.assert_array_equal(image, decoded)
        assert decoded.dtype == np.float32

    def test_length_mismatch_rejected(self):
        payload = encode_image(make_image(3))
        payload["shape"] = [3, 8, 9]
        with pytest.raises(ValueError, match="do not match shape"):
            decode_image(payload)

    def test_garbage_base64_rejected(self):
        with pytest.raises(ValueError, match="bad image payload"):
            decode_image({"image_b64": "!!!", "shape": [1]})


class TestVirtualClock:
    def test_scaling_maps_wall_to_virtual_and_back(self):
        clock = VirtualClock(epoch=100.0, time_scale=4.0)
        assert clock.wall_deadline(2.0) == 108.0
        # wall 110 -> virtual (110-100)/4 = 2.5
        import time as time_mod

        virtual = (110.0 - clock.epoch) / clock.time_scale
        assert virtual == 2.5
        assert clock() == pytest.approx(
            (time_mod.monotonic() - 100.0) / 4.0, rel=1e-3
        )

    def test_nonpositive_scale_rejected(self):
        with pytest.raises(ValueError, match="time_scale"):
            VirtualClock(0.0, 0.0)


# ----------------------------------------------------------------------
# Comparison verdicts (pure logic on synthetic reports)
# ----------------------------------------------------------------------
def synthetic_report(policy, p50, p95, p99, occupancy, requests=100):
    return {
        "policy": policy,
        "num_requests": requests,
        "latency_p50_s": p50,
        "latency_p95_s": p95,
        "latency_p99_s": p99,
        "occupancy": occupancy,
    }


class TestCompareVerdict:
    def test_matching_reports_pass(self):
        sim = [
            synthetic_report("a", 0.010, 0.020, 0.030, {"8": 70, "16": 30}),
            synthetic_report("b", 0.020, 0.040, 0.060, {"8": 0, "16": 100}),
        ]
        real = [
            synthetic_report("a", 0.011, 0.021, 0.032, {"8": 68, "16": 32}),
            synthetic_report("b", 0.019, 0.042, 0.058, {"8": 2, "16": 98}),
        ]
        verdict = compare_reports(sim, real)
        assert verdict["ok"]
        assert verdict["ordering"]["latency_p50_s"]["pairs_checked"] == 1

    def test_inverted_ordering_fails(self):
        sim = [
            synthetic_report("a", 0.010, 0.020, 0.030, {"8": 100}),
            synthetic_report("b", 0.020, 0.040, 0.060, {"8": 100}),
        ]
        real = [
            synthetic_report("a", 0.030, 0.050, 0.070, {"8": 100}),
            synthetic_report("b", 0.020, 0.040, 0.060, {"8": 100}),
        ]
        verdict = compare_reports(sim, real)
        assert not verdict["ok"]
        assert verdict["ordering"]["latency_p50_s"]["violations"]

    def test_sim_ties_are_not_checked(self):
        sim = [
            synthetic_report("a", 0.0100, 0.020, 0.030, {"8": 100}),
            synthetic_report("b", 0.0102, 0.020, 0.030, {"8": 100}),
        ]
        real = [                       # real inverts, but sim called a tie
            synthetic_report("a", 0.013, 0.021, 0.031, {"8": 100}),
            synthetic_report("b", 0.011, 0.019, 0.029, {"8": 100}),
        ]
        verdict = compare_reports(sim, real)
        assert verdict["ok"]
        for field in ("latency_p50_s", "latency_p95_s", "latency_p99_s"):
            assert verdict["ordering"][field]["pairs_checked"] == 0

    def test_occupancy_drift_fails(self):
        sim = [synthetic_report("a", 0.01, 0.02, 0.03, {"8": 100, "16": 0})]
        real = [synthetic_report("a", 0.01, 0.02, 0.03, {"8": 0, "16": 100})]
        verdict = compare_reports(sim, real)
        assert not verdict["ok"]
        assert verdict["occupancy"]["a"]["l1_distance"] == pytest.approx(2.0)

    def test_dropped_requests_fail_completion(self):
        sim = [synthetic_report("a", 0.01, 0.02, 0.03, {"8": 100})]
        real = [synthetic_report(
            "a", 0.01, 0.02, 0.03, {"8": 80}, requests=80,
        )]
        verdict = compare_reports(sim, real)
        assert not verdict["ok"]
        assert not verdict["completion"]["a"]["ok"]

    def test_policy_set_mismatch_is_an_error(self):
        sim = [synthetic_report("a", 0.01, 0.02, 0.03, {"8": 100})]
        verdict = compare_reports(sim, [])
        assert not verdict["ok"]
        assert "policy sets differ" in verdict["error"]


# ----------------------------------------------------------------------
# Real plane: spawned worker processes (deselected from tier-1)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def checkpoint(tmp_path_factory):
    """One tiny on-disk checkpoint shared by every pool in the module."""
    config = SPNetConfig(
        model="resnet8", bit_widths=(4, 8), num_classes=4,
        width_mult=0.25, image_size=8,
    )
    sp_net = build_sp_net(config)
    npz_path, _ = save_checkpoint(
        sp_net, config, str(tmp_path_factory.mktemp("ckpt") / "model")
    )
    return npz_path


def make_pool(checkpoint, *, service_s=0.02, **overrides):
    """A pool whose cost model is slow enough that time_scale=1 works."""
    kwargs = dict(
        policy="queue",
        bit_widths=(4, 8),
        workers=2,
        max_batch=4,
        slo_s=8 * service_s,
        warmup_shape=IMAGE_SHAPE,
        time_scale=1.0,
        max_pending=64,
    )
    kwargs.update(overrides)
    latency_model = BitLatencyModel(
        {4: service_s / 2, 8: service_s},
        batch_overhead_s=service_s,
    )
    return WorkerPool(checkpoint, kwargs.pop("policy"), latency_model,
                      kwargs.pop("bit_widths"), **kwargs)


@pytest.mark.real_plane
class TestWorkerPool:
    def test_submit_completes_end_to_end(self, checkpoint):
        pool = make_pool(checkpoint, workers=1)
        pool.start()
        try:
            futures = [
                pool.submit(make_image(i), label=i % 4)[1]
                for i in range(6)
            ]
            results = [f.result(timeout=30) for f in futures]
        finally:
            pool.stop()
        assert [r.request_id for r in results] == list(range(6))
        for result in results:
            assert result.bits in (4, 8)
            assert result.finish_s > result.arrival_s
            assert isinstance(result.prediction, int)
        report = build_pool_report(pool, "test", "tiny", pool.slo_s)
        assert report.num_requests == 6
        assert sum(report.occupancy.values()) == 6

    def test_overflow_rejected_with_429(self, checkpoint):
        pool = make_pool(
            checkpoint, workers=1, max_pending=2, service_s=0.2,
        )
        pool.start()
        try:
            kept = [pool.submit(make_image(i))[1] for i in range(2)]
            with pytest.raises(PoolSaturated):
                pool.submit(make_image(9))
            assert pool.rejected == 1

            async def over_http():
                gateway = Gateway(pool)
                await gateway.start()
                try:
                    body = encode_image(make_image(9))
                    return await http_request_json(
                        "127.0.0.1", gateway.port, "POST", "/infer", body
                    )
                finally:
                    await gateway.close()

            status, body = asyncio.run(over_http())
            # Admitted requests still complete after the rejections.
            results = [f.result(timeout=30) for f in kept]
        finally:
            pool.stop()
        assert status == 429
        assert body["rejected"] is True
        assert len(results) == 2

    def test_drain_completes_inflight_then_refuses(self, checkpoint):
        pool = make_pool(checkpoint, workers=2, service_s=0.05)
        pool.start()
        try:
            futures = [pool.submit(make_image(i))[1] for i in range(10)]
            assert pool.drain(timeout_s=30)
            results = [f.result(timeout=1) for f in futures]
            assert len(results) == 10
            assert pool.state == "stopped"
            assert set(pool.worker_states()) == {"stopped"}
            with pytest.raises(PoolStopped):
                pool.submit(make_image(0))
        finally:
            pool.stop()
        report = build_pool_report(pool, "test", "tiny", pool.slo_s)
        assert report.num_requests == 10

    def test_worker_crash_fails_pending_and_pool_survives(self, checkpoint):
        pool = make_pool(checkpoint, workers=2, service_s=0.3)
        pool.start()
        try:
            futures = {}
            for i in range(6):
                request_id, future = pool.submit(make_image(i))
                futures[request_id] = future
            victim = next(
                w for w in pool._workers if w.pending
            )
            survivor = next(
                w for w in pool._workers if w.index != victim.index
            )
            victim.process.kill()
            doomed = [
                futures[request_id] for request_id in victim.pending
            ]
            assert doomed
            with pytest.raises(WorkerCrashed):
                doomed[0].result(timeout=30)
            # The pool keeps serving on the survivor: new submissions
            # route around the failed worker and complete.
            deadline_futures = [
                pool.submit(make_image(100 + i))[1] for i in range(2)
            ]
            fresh = [f.result(timeout=30) for f in deadline_futures]
            assert len(fresh) == 2
            states = pool.worker_states()
            assert states[victim.index] == "failed"
            assert states[survivor.index] == "active"
        finally:
            pool.stop()


@pytest.mark.real_plane
class TestGatewayEndpoints:
    def test_lifecycle_over_http(self, checkpoint):
        from repro.obs.metrics import MetricsRecorder, MetricsRegistry
        from repro.obs.tracer import Tracer

        metrics = MetricsRegistry()
        tracer = Tracer(sinks=(MetricsRecorder(metrics),))
        pool = make_pool(checkpoint, workers=1, tracer=tracer)
        pool.start()

        async def scenario():
            gateway = Gateway(pool, metrics=metrics)
            await gateway.start()
            out = {}
            try:
                out["health"] = await http_request_json(
                    "127.0.0.1", gateway.port, "GET", "/healthz"
                )
                body = encode_image(make_image(0))
                body["request_id"] = 7
                body["label"] = 1
                out["infer"] = await http_request_json(
                    "127.0.0.1", gateway.port, "POST", "/infer", body
                )
                out["bad"] = await http_request_json(
                    "127.0.0.1", gateway.port, "POST", "/infer",
                    {"image_b64": "AAAA", "shape": [3]},
                )
                out["stats"] = await http_request_json(
                    "127.0.0.1", gateway.port, "GET", "/stats"
                )
                out["metrics"] = await http_request_json(
                    "127.0.0.1", gateway.port, "GET", "/metrics"
                )
                out["drain"] = await http_request_json(
                    "127.0.0.1", gateway.port, "POST", "/admin/drain"
                )
                assert await gateway.wait_drained(timeout_s=30)
                out["post_drain_infer"] = await http_request_json(
                    "127.0.0.1", gateway.port, "POST", "/infer",
                    encode_image(make_image(1)),
                )
                out["post_drain_health"] = await http_request_json(
                    "127.0.0.1", gateway.port, "GET", "/healthz"
                )
            finally:
                await gateway.close()
            return out

        try:
            out = asyncio.run(scenario())
        finally:
            pool.stop()

        assert out["health"][0] == 200
        status, body = out["infer"]
        assert status == 200
        assert body["request_id"] == 7
        assert body["bits"] in ("4", "8")
        assert body["latency_s"] > 0
        assert out["bad"][0] == 400
        assert out["stats"][1]["workers"][0]["batches"] >= 1
        scrape = out["metrics"][1]["raw"]
        assert "repro_requests_completed_total" in scrape
        assert out["drain"][0] == 202
        assert out["post_drain_infer"][0] == 503
        assert out["post_drain_health"][0] == 503

    def test_healthz_degrades_on_worker_crash(self, checkpoint):
        # A crashed worker among survivors is *degraded*: the gateway
        # keeps answering 200 (the pool can still take traffic) but the
        # body carries the verdict and the reason, which is what load
        # balancers vs pagers respectively key on.
        pool = make_pool(checkpoint, workers=2, service_s=0.3)
        pool.start()
        try:
            futures = {}
            for i in range(6):
                request_id, future = pool.submit(make_image(i))
                futures[request_id] = future
            victim = next(w for w in pool._workers if w.pending)
            victim.process.kill()
            doomed = [futures[rid] for rid in victim.pending]
            with pytest.raises(WorkerCrashed):
                doomed[0].result(timeout=30)

            async def probe():
                gateway = Gateway(pool)
                await gateway.start()
                try:
                    return await http_request_json(
                        "127.0.0.1", gateway.port, "GET", "/healthz"
                    )
                finally:
                    await gateway.close()

            status, body = asyncio.run(probe())
        finally:
            pool.stop()
        assert status == 200
        assert body["healthy"] is True
        assert body["health"] == "degraded"
        assert any("failed" in reason for reason in body["reasons"])
        assert "failed" in body["workers"]
