"""SP-NAS: search space, supernet, bi-level search, derivation."""

import numpy as np
import pytest

from repro import rng as rng_mod
from repro.core.spnas import (
    BlockSpec,
    DerivedNetwork,
    SPNASConfig,
    SPNASSearcher,
    Supernet,
    build_derived,
    candidate_flops,
    cifar_search_space,
    search_fp_nas,
    search_lp_nas,
    search_spnas,
    tiny_search_space,
)
from repro.data import cifar100_like
from repro.quant import SwitchableFactory, SwitchablePrecisionNetwork
from repro.tensor import Tensor


def image(n=2, size=16):
    return Tensor(np.random.default_rng(0).normal(
        size=(n, 3, size, size)).astype(np.float32))


class TestSpace:
    def test_layer_configs_count(self):
        space = tiny_search_space(16)
        assert len(space.layer_configs()) == space.num_searchable_layers

    def test_skip_only_where_legal(self):
        space = tiny_search_space(16)
        for in_ch, out_ch, stride, hw, allow_skip in space.layer_configs():
            if allow_skip:
                assert stride == 1 and in_ch == out_ch

    def test_candidate_flops_ordering(self):
        small = candidate_flops(BlockSpec("mbconv", 1, 3), 8, 8, 1, 16)
        big = candidate_flops(BlockSpec("mbconv", 6, 5), 8, 8, 1, 16)
        assert 0 < small < big

    def test_skip_has_zero_flops(self):
        assert candidate_flops(BlockSpec("skip"), 8, 8, 1, 16) == 0

    def test_cifar_space_resolution(self):
        space = cifar_search_space(32)
        assert space.final_hw == 32 // (2 * 2 * 2)


class TestSupernet:
    def _supernet(self, bits=(4, 32)):
        space = tiny_search_space(16)
        factory = SwitchableFactory(list(bits))
        return Supernet(space, factory, num_classes=5), space

    def test_forward_requires_resample(self):
        net, _ = self._supernet()
        with pytest.raises(RuntimeError, match="resample"):
            net(image())

    def test_forward_after_resample(self):
        net, _ = self._supernet()
        net.resample(temperature=3.0)
        assert net(image()).shape == (2, 5)

    def test_arch_params_not_in_weight_params(self):
        net, _ = self._supernet()
        weight_ids = {id(p) for p in net.weight_parameters()}
        for alpha in net.arch_parameters():
            assert id(alpha) not in weight_ids

    def test_expected_flops_differentiable(self):
        net, _ = self._supernet()
        flops = net.expected_flops()
        flops.backward()
        assert any(a.grad is not None for a in net.arch_parameters())

    def test_expected_flops_tracks_logits(self):
        net, _ = self._supernet()
        base = net.expected_flops().item()
        # Push every layer's logits hard toward its cheapest candidate.
        for logits, op in zip(net._arch_logits, net.mixed_ops):
            cheapest = int(np.argmin(op.flops))
            logits.data[:] = -10.0
            logits.data[cheapest] = 10.0
        assert net.expected_flops().item() < base

    def test_use_argmax_sets_one_hot(self):
        net, _ = self._supernet()
        net.use_argmax()
        out = net(image())
        assert out.shape == (2, 5)

    def test_argmax_specs_length(self):
        net, space = self._supernet()
        assert len(net.argmax_specs()) == space.num_searchable_layers

    def test_supernet_is_switchable(self):
        net, _ = self._supernet()
        sp = SwitchablePrecisionNetwork(net, [4, 32])
        net.resample(3.0)
        for bits, out in sp.forward_all(image()):
            assert out.shape == (2, 5)


class TestSearchAndDerive:
    def _search(self, searcher_fn=search_spnas, epochs=1):
        rng_mod.set_seed(0)
        train, _ = cifar100_like(num_train=96, num_test=32, image_size=12,
                                 num_classes=5, difficulty=2.0)
        space = tiny_search_space(12)
        cfg = SPNASConfig(epochs=epochs, batch_size=32, flops_target=2e5,
                          lambda_eff=1.0)
        return searcher_fn(space, [4, 32], 5, train, cfg), space

    def test_search_returns_specs_for_every_layer(self):
        result, space = self._search()
        assert len(result.specs) == space.num_searchable_layers
        assert result.flops > 0
        assert len(result.history["weight_loss"]) == 1

    def test_derived_network_forward_all_bits(self):
        result, _ = self._search()
        builder = build_derived(result, 5)
        fac = SwitchableFactory([4, 32])
        model = builder(fac)
        sp = SwitchablePrecisionNetwork(model, [4, 32])
        for bits, out in sp.forward_all(image(size=12)):
            assert out.shape == (2, 5)

    def test_derived_rejects_wrong_spec_count(self):
        result, space = self._search()
        fac = SwitchableFactory([4, 32])
        with pytest.raises(ValueError):
            DerivedNetwork(space, result.specs[:-1], fac, 5)

    def test_fp_and_lp_nas_run(self):
        for fn in (search_fp_nas, search_lp_nas):
            result, _ = self._search(searcher_fn=fn)
            assert result.flops > 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SPNASConfig(arch_bits="median")
        with pytest.raises(ValueError):
            SPNASConfig(weight_mode="mixed")
