"""Benchmark configuration.

Each benchmark regenerates one of the paper's tables/figures and prints
the measured rows next to the paper's reference numbers (captured with
``pytest benchmarks/ --benchmark-only -s``).

Scale selection: the environment variable ``REPRO_BENCH_SCALE``
(``smoke`` | ``default`` | ``full``) overrides the per-benchmark default.
Training-heavy experiments default to ``smoke`` so the full harness
completes in minutes; the pure-hardware experiments (Fig. 5) default to
``default`` since they are cheap.  Run with
``REPRO_BENCH_SCALE=default`` to reproduce the orderings reported in
EXPERIMENTS.md.
"""

import os

import pytest

from repro import rng as rng_mod


def scale_for(default: str) -> str:
    return os.environ.get("REPRO_BENCH_SCALE", default)


@pytest.fixture(autouse=True)
def _seed():
    rng_mod.set_seed(2021)  # the paper's year, for luck and determinism
    yield
