"""Tracked perf suite: writes BENCH_perf.json and checks the trajectory.

Run directly::

    PYTHONPATH=src python -m pytest benchmarks/perf -q -s

The suite times every tracked op twice — optimised path and reference
(pre-optimisation) path — so the asserted speedups are measured live on
the current machine rather than against hard-coded wall-clock numbers.
Thresholds are deliberately below the typical measured speedups (see
BENCH_perf.json / README "Performance") to keep the gate robust to
machine noise.
"""

import json
import os

import pytest

from repro.bench import check_regressions, load_baseline, run_suite, write_results

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
_BASELINE = os.path.join(_REPO_ROOT, "benchmarks", "perf", "baseline.json")
_OUTPUT = os.path.join(_REPO_ROOT, "BENCH_perf.json")


@pytest.fixture(scope="module")
def suite_results():
    results = run_suite("smoke")
    write_results(results, _OUTPUT)
    print()
    print(json.dumps(results["ops"], indent=2, sort_keys=True))
    return results


def test_all_tracked_ops_present(suite_results):
    assert set(suite_results["ops"]) >= {
        "conv_1x1_pointwise",
        "conv_3x3_dense",
        "conv_3x3_depthwise",
        "cdt_training_step",
        "spnet_eval_forward",
        "automapper_alexnet_search",
        "serve_sim_bursty_slo",
        "serve_checkpoint_roundtrip",
        "pipeline_smoke",
    }
    for entry in suite_results["ops"].values():
        assert entry["median_s"] > 0


def test_cdt_step_speedup(suite_results):
    """CDT training step beats its own slow path (target >= 1.5x)."""
    assert suite_results["ops"]["cdt_training_step"]["speedup"] >= 1.2


def test_eval_forward_speedup(suite_results):
    """Eval forwards cache 100% of weight quantisation."""
    assert suite_results["ops"]["spnet_eval_forward"]["speedup"] >= 1.2


def test_pointwise_conv_speedup(suite_results):
    """The 1x1 fast path must beat im2col."""
    assert suite_results["ops"]["conv_1x1_pointwise"]["speedup"] >= 1.2


def test_no_regression_vs_committed_baseline(suite_results):
    baseline = load_baseline(_BASELINE)
    if baseline is None or baseline.get("scale") != suite_results["scale"]:
        pytest.skip("no comparable committed baseline")
    failures = check_regressions(suite_results, baseline)
    assert not failures, "\n".join(failures)
