"""Fig. 2 bench: 4-bit prediction distributions, vanilla vs CDT."""

from conftest import scale_for

from repro.experiments import fig2


def test_fig2_prediction_distribution(benchmark):
    result = benchmark.pedantic(
        lambda: fig2.run(scale=scale_for("smoke")), rounds=1, iterations=1
    )
    print()
    print(result.to_text())
    rows = {r["method"]: r for r in result.rows}
    # Shape claim: CDT's 4-bit output is at least as close to the 32-bit
    # distribution as vanilla distillation's (paper: dramatically closer).
    assert rows["cdt"]["kl_4bit_to_32bit"] <= \
        rows["vanilla"]["kl_4bit_to_32bit"] * 1.5
