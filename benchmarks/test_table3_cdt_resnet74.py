"""Table III bench: CDT vs independently-trained SBM on ResNet-74."""

from conftest import scale_for

from repro.experiments import table3


def test_table3_cdt_resnet74(benchmark):
    result = benchmark.pedantic(
        lambda: table3.run(scale=scale_for("smoke")), rounds=1, iterations=1
    )
    print()
    print(result.to_text())
    assert result.experiment == "table3"
    assert len(result.rows) >= 8
