"""Fig. 6 bench: InstantNet vs SOTA IoT systems (accuracy vs EDP)."""

from conftest import scale_for

from repro.experiments import fig6


def test_fig6_end_to_end(benchmark):
    result = benchmark.pedantic(
        lambda: fig6.run(scale=scale_for("smoke")), rounds=1, iterations=1
    )
    print()
    print(result.to_text())
    # Shape claim: InstantNet's EDP beats the better baseline system at
    # the lowest bit-width (paper: -62.5%..-84.67%).
    lowest = min(r["bits"] for r in result.rows)
    low_rows = [r for r in result.rows if r["bits"] == lowest]
    assert all(
        r["edp_instantnet"] < min(r["edp_sys1"], r["edp_sys2"])
        for r in low_rows
    )
