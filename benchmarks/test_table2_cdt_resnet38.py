"""Table II bench: CDT vs independently-trained SBM on ResNet-38."""

from conftest import scale_for

from repro.experiments import table2


def test_table2_cdt_resnet38(benchmark):
    result = benchmark.pedantic(
        lambda: table2.run(scale=scale_for("smoke")), rounds=1, iterations=1
    )
    print()
    print(result.to_text())
    assert {r["dataset"] for r in result.rows} == {"cifar10", "cifar100"}
    # Every row reports both methods.
    assert all("acc_cdt" in r and "acc_sbm" in r for r in result.rows)
