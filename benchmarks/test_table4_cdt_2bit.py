"""Table IV bench: CDT vs SP at extreme 2-bit on ResNet-18."""

from conftest import scale_for

from repro.experiments import table4


def test_table4_cdt_2bit(benchmark):
    result = benchmark.pedantic(
        lambda: table4.run(scale=scale_for("smoke")), rounds=1, iterations=1
    )
    print()
    print(result.to_text())
    # Shape claim: CDT >= SP at the extreme W2A2 point (paper: +4.5%).
    w2a2 = next(r for r in result.rows if r["bits"] == "W2A2")
    assert w2a2["acc_cdt"] >= w2a2["acc_sp"] - 2.0  # smoke-scale noise band
