"""Ablation benches for the design choices DESIGN.md calls out.

1. Stop-gradient in CDT (Eq. 1's SG operator),
2. Switchable vs shared batch-norm statistics,
3. Evolutionary vs random dataflow search,
4. Arch-update bit-width in SP-NAS (lowest vs highest).
"""

import numpy as np
from conftest import scale_for

from repro import rng as rng_mod
from repro.core import (
    CascadeDistillation,
    SwitchableTrainer,
    TrainConfig,
    evaluate_all_bits,
)
from repro.core.automapper import AutoMapper, AutoMapperConfig, random_search_layer
from repro.data import cifar100_like
from repro.hardware import alexnet_workloads, eyeriss_like_asic
from repro.nn import models
from repro.quant import SwitchableFactory, SwitchablePrecisionNetwork

BITS = [4, 8, 32]


def _data():
    return cifar100_like(num_train=256, num_test=96, image_size=12,
                         num_classes=5, difficulty=2.0)


def _train(switchable_bn=True, beta=1.0, epochs=3):
    rng_mod.set_seed(0)
    train, test = _data()
    fac = SwitchableFactory(BITS, quantizer="sbm", switchable_bn=switchable_bn)
    model = models.mobilenet_v2(num_classes=5, setting="tiny", factory=fac,
                                width_mult=0.5)
    sp = SwitchablePrecisionNetwork(model, BITS)
    SwitchableTrainer(
        sp, CascadeDistillation(beta=beta),
        TrainConfig(epochs=epochs, batch_size=32),
    ).fit(train)
    return evaluate_all_bits(sp, test)


def test_ablation_switchable_bn(benchmark):
    """Shared BN statistics must hurt low-bit accuracy vs switchable BN."""

    def run():
        with_sbn = _train(switchable_bn=True)
        without = _train(switchable_bn=False)
        return with_sbn, without

    with_sbn, without = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nswitchable BN acc@4={with_sbn[4]:.3f}  "
          f"shared BN acc@4={without[4]:.3f}")
    # Allow noise at this scale, but shared BN should not clearly win.
    assert with_sbn[4] >= without[4] - 0.05


def test_ablation_distillation_weight(benchmark):
    """beta > 0 (distillation on) should not hurt the lowest bit-width."""

    def run():
        return _train(beta=1.0), _train(beta=0.0)

    with_distill, without = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nbeta=1 acc@4={with_distill[4]:.3f}  beta=0 acc@4={without[4]:.3f}")
    assert with_distill[4] >= without[4] - 0.05


def test_ablation_evolution_vs_random(benchmark):
    """Alg. 1's exploitation advantage over random search (3-seed median)."""

    def run():
        dev = eyeriss_like_asic()
        wl = alexnet_workloads()[2]
        evo, rnd = [], []
        for seed in range(3):
            rng_mod.set_seed(seed)
            am = AutoMapper(dev, AutoMapperConfig(
                pool_size=16, breed_batch=8, generations=30, metric="edp",
                seed_key=f"abl-{seed}"))
            _, cost = am.search_layer(wl)
            evo.append(cost.edp)
            _, rc = random_search_layer(
                wl, dev, am.evaluations, metric="edp",
                rng=np.random.default_rng(seed + 50))
            rnd.append(rc.edp)
        return float(np.median(evo)), float(np.median(rnd))

    evo, rnd = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nevolution median EDP={evo:.3e}  random median EDP={rnd:.3e}")
    assert evo <= rnd * 1.1


def test_ablation_arch_bits(benchmark):
    """SP-NAS's lowest-bit arch signal vs the FP-NAS highest-bit signal:
    both must run and produce complete architectures (accuracy ordering
    is asserted in the fig4 experiment at larger scales)."""
    from repro.core.spnas import (
        SPNASConfig, search_fp_nas, search_spnas, tiny_search_space,
    )

    def run():
        rng_mod.set_seed(0)
        train, _ = _data()
        space = tiny_search_space(12)
        cfg = SPNASConfig(epochs=1, batch_size=32, flops_target=2e5,
                          lambda_eff=1.0)
        sp = search_spnas(space, [4, 32], 5, train, cfg)
        rng_mod.set_seed(0)
        fp = search_fp_nas(space, [4, 32], 5, train, cfg)
        return sp, fp

    sp, fp = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nspnas: {'-'.join(sp.labels)} ({sp.flops:.2e} MACs)")
    print(f"fpnas: {'-'.join(fp.labels)} ({fp.flops:.2e} MACs)")
    assert len(sp.specs) == len(fp.specs)
