"""Fig. 7 bench: InstantNet vs SOTA FPGA IoT system (FPS on ImageNet-like)."""

from conftest import scale_for

from repro.experiments import fig7


def test_fig7_imagenet_fps(benchmark):
    result = benchmark.pedantic(
        lambda: fig7.run(scale=scale_for("smoke")), rounds=1, iterations=1
    )
    print()
    print(result.to_text())
    # Shape claim: InstantNet's throughput beats the baseline system
    # (paper: 1.86x at comparable accuracy).
    assert all(r["fps_gain"] >= 1.0 for r in result.rows)
