"""Fig. 5 bench: AutoMapper vs expert dataflows on ASIC and FPGA."""

from conftest import scale_for

from repro.experiments import fig5


def test_fig5_automapper(benchmark):
    result = benchmark.pedantic(
        lambda: fig5.run(scale=scale_for("default")), rounds=1, iterations=1
    )
    print()
    print(result.to_text())
    # Shape claims: AutoMapper beats Eyeriss on every ASIC network, and
    # the ASIC gains exceed the FPGA gains (the paper's flexibility point).
    eyeriss = [r for r in result.rows if r["baseline"] == "eyeriss"]
    assert eyeriss and all(r["reduction_pct"] > 0 for r in eyeriss)
    fpga = [r for r in result.rows if r["platform"] == "fpga"
            and r["baseline"] == "dnnbuilder"]
    if fpga and len(eyeriss) > 1:
        best_asic = max(r["reduction_pct"] for r in eyeriss)
        assert best_asic >= max(r["reduction_pct"] for r in fpga)
