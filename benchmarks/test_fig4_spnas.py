"""Fig. 4 bench: SP-NAS vs FP-NAS / LP-NAS under FLOPs constraints."""

from conftest import scale_for

from repro.experiments import fig4


def test_fig4_spnas(benchmark):
    result = benchmark.pedantic(
        lambda: fig4.run(scale=scale_for("smoke")), rounds=1, iterations=1
    )
    print()
    print(result.to_text())
    methods = {r["method"] for r in result.rows}
    assert methods == {"spnas", "fpnas", "lpnas"}
    # Every search respected its budget within the soft-constraint slack.
    assert all(r["flops"] > 0 for r in result.rows)
