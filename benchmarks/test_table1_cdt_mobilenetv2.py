"""Table I bench: CDT vs SBM/SP/AdaBits on MobileNetV2 (CIFAR-100-like)."""

from conftest import scale_for

from repro.experiments import table1


def test_table1_cdt_mobilenetv2(benchmark):
    scale = scale_for("smoke")
    result = benchmark.pedantic(
        lambda: table1.run(scale=scale), rounds=1, iterations=1
    )
    print()
    print(result.to_text())
    # Shape claim: CDT is the best method at the lowest bit-width (the
    # paper's headline Table I observation).  The 2-epoch smoke scale
    # only sanity-checks a noise band; the strict ordering is asserted
    # from the default scale upward (REPRO_BENCH_SCALE=default).
    low_rows = [r for r in result.rows if r["bits"] == "4"]
    assert low_rows
    if scale == "smoke":
        for r in low_rows:
            assert r["acc_cdt"] >= max(r["acc_sp"], r["acc_adabits"]) - 12.0
    else:
        wins = sum(
            r["acc_cdt"] >= max(r["acc_sp"], r["acc_adabits"])
            for r in low_rows
        )
        assert wins >= len(low_rows) - 1  # allow one noisy cell
