#!/usr/bin/env python
"""Run the tracked perf suite and gate on the committed baseline.

Equivalent to ``python -m repro bench``; kept as a standalone script so
CI and git hooks can invoke it without installing the package::

    PYTHONPATH=src python scripts/bench.py            # smoke scale + gate
    PYTHONPATH=src python scripts/bench.py --update-baseline

Exits non-zero when any tracked op is more than 2x slower than
``benchmarks/perf/baseline.json``.  Paths default to the repository
root, so the script works from any working directory.
"""

import os
import sys

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(_REPO_ROOT, "src"))

from repro.bench import main  # noqa: E402


if __name__ == "__main__":
    argv = sys.argv[1:]
    if not any(arg.startswith("--output") for arg in argv):
        argv += ["--output", os.path.join(_REPO_ROOT, "BENCH_perf.json")]
    if not any(arg.startswith("--baseline") for arg in argv):
        argv += [
            "--baseline",
            os.path.join(_REPO_ROOT, "benchmarks", "perf", "baseline.json"),
        ]
    raise SystemExit(main(argv))
