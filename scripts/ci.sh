#!/usr/bin/env bash
# Repo CI gate: tier-1 tests, a serving-layer smoke scenario, and the
# tracked perf bench (regression-gated against the committed baseline).
#
#   bash scripts/ci.sh            # full gate
#   bash scripts/ci.sh --fast     # tier-1 tests only
#
# Each stage fails fast; the script exits non-zero on the first failure.

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$REPO_ROOT"
export PYTHONPATH="$REPO_ROOT/src${PYTHONPATH:+:$PYTHONPATH}"

echo "==> tier-1 pytest"
python -m pytest -x -q

if [[ "${1:-}" == "--fast" ]]; then
    echo "==> done (fast mode: skipped serve-sim + bench)"
    exit 0
fi

echo "==> pipeline smoke (generate -> train -> deploy -> serve from one JSON)"
python -m repro pipeline validate --config examples/pipeline_smoke.json
PIPELINE_RUN_DIR="$(mktemp -d)"
trap 'rm -rf "$PIPELINE_RUN_DIR"' EXIT
python -m repro pipeline run --config examples/pipeline_smoke.json \
    --run-dir "$PIPELINE_RUN_DIR"
for artifact in architecture.json checkpoint.npz deploy_report.json \
        serve_report.json pipeline_report.json; do
    test -f "$PIPELINE_RUN_DIR/$artifact" \
        || { echo "missing pipeline artifact: $artifact"; exit 1; }
done

echo "==> serve-sim smoke (bursty scenario, all policies)"
python -m repro serve-sim --scenario bursty --policy all --scale smoke --seed 0

echo "==> fleet serve-sim smoke (4 replicas behind the least_queue router)"
python -m repro serve-sim --scenario bursty --policy slo --scale smoke \
    --replicas 4 --router least_queue --seed 0

echo "==> loadtest smoke (tiny grid; report must be bit-identical across runs)"
LOADTEST_DIR_A="$(mktemp -d)"
LOADTEST_DIR_B="$(mktemp -d)"
trap 'rm -rf "$PIPELINE_RUN_DIR" "$LOADTEST_DIR_A" "$LOADTEST_DIR_B"' EXIT
python -m repro loadtest --config examples/loadtest_smoke.json \
    --output-dir "$LOADTEST_DIR_A" --quiet
python -m repro loadtest --config examples/loadtest_smoke.json \
    --output-dir "$LOADTEST_DIR_B" --quiet
for artifact in loadtest_report.json loadtest_report.md \
        trace_bursty.jsonl trace_flash_crowd.jsonl; do
    test -f "$LOADTEST_DIR_A/$artifact" \
        || { echo "missing loadtest artifact: $artifact"; exit 1; }
done
diff -r "$LOADTEST_DIR_A" "$LOADTEST_DIR_B" \
    || { echo "loadtest run is not deterministic"; exit 1; }
grep -q '"energy_per_request_pj"' "$LOADTEST_DIR_A/loadtest_report.json" \
    || { echo "loadtest report lacks the energy-per-request column"; exit 1; }

echo "==> obs smoke (tracing must not change the deterministic report)"
OBS_DIR="$(mktemp -d)"
trap 'rm -rf "$PIPELINE_RUN_DIR" "$LOADTEST_DIR_A" "$LOADTEST_DIR_B" "$OBS_DIR"' EXIT
python -m repro loadtest --config examples/loadtest_smoke.json \
    --output-dir "$OBS_DIR" --obs --quiet
cmp "$LOADTEST_DIR_A/loadtest_report.json" "$OBS_DIR/loadtest_report.json" \
    || { echo "traced loadtest report differs from untraced run"; exit 1; }
for artifact in obs/trace_events.jsonl obs/metrics.prom obs/metrics.jsonl; do
    test -f "$OBS_DIR/$artifact" \
        || { echo "missing obs artifact: $artifact"; exit 1; }
done
python -m repro obs "$OBS_DIR" > /dev/null \
    || { echo "repro obs failed to render the traced run dir"; exit 1; }

echo "==> perf bench smoke (gated on benchmarks/perf/baseline.json)"
python -m repro bench --scale smoke

echo "==> CI gate passed"
