#!/usr/bin/env bash
# Repo CI gate: tier-1 tests, a serving-layer smoke scenario, and the
# tracked perf bench (regression-gated against the committed baseline).
#
#   bash scripts/ci.sh            # full gate
#   bash scripts/ci.sh --fast     # tier-1 tests only
#
# Each stage fails fast; the script exits non-zero on the first failure.

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$REPO_ROOT"
export PYTHONPATH="$REPO_ROOT/src${PYTHONPATH:+:$PYTHONPATH}"

echo "==> static analysis (repro check vs committed findings baseline)"
python -m repro check --fail-on error --baseline scripts/check_baseline.json
git diff --quiet -- scripts/check_baseline.json \
    || { echo "scripts/check_baseline.json has uncommitted edits;" \
         "baseline updates must land as their own commit"; exit 1; }
python - <<'PY'
# The baseline may only grow in an explicit baseline-update commit (one
# that touches nothing but the baseline file); silent growth inside a
# code commit defeats the gate.
import json
import subprocess
import sys


def entries(ref):
    proc = subprocess.run(
        ["git", "show", f"{ref}:scripts/check_baseline.json"],
        capture_output=True, text=True,
    )
    if proc.returncode != 0:
        return None
    return len(json.loads(proc.stdout).get("findings", []))


head, prev = entries("HEAD"), entries("HEAD~1")
if head is None or prev is None or head <= prev:
    sys.exit(0)
touched = subprocess.run(
    ["git", "diff", "--name-only", "HEAD~1", "HEAD"],
    capture_output=True, text=True, check=True,
).stdout.split()
if touched != ["scripts/check_baseline.json"]:
    print(f"findings baseline grew {prev} -> {head} entries inside a "
          f"code commit; grow it only via a baseline-only commit")
    sys.exit(1)
PY

echo "==> tier-1 pytest"
python -m pytest -x -q

if [[ "${1:-}" == "--fast" ]]; then
    echo "==> done (fast mode: skipped serve-sim + bench)"
    exit 0
fi

echo "==> pipeline smoke (generate -> train -> deploy -> serve from one JSON)"
python -m repro pipeline validate --config examples/pipeline_smoke.json
PIPELINE_RUN_DIR="$(mktemp -d)"
trap 'rm -rf "$PIPELINE_RUN_DIR"' EXIT
python -m repro pipeline run --config examples/pipeline_smoke.json \
    --run-dir "$PIPELINE_RUN_DIR"
for artifact in architecture.json checkpoint.npz deploy_report.json \
        serve_report.json pipeline_report.json; do
    test -f "$PIPELINE_RUN_DIR/$artifact" \
        || { echo "missing pipeline artifact: $artifact"; exit 1; }
done

echo "==> serve-sim smoke (bursty scenario, all policies)"
python -m repro serve-sim --scenario bursty --policy all --scale smoke --seed 0

echo "==> fleet serve-sim smoke (4 replicas behind the least_queue router)"
python -m repro serve-sim --scenario bursty --policy slo --scale smoke \
    --replicas 4 --router least_queue --seed 0

echo "==> loadtest smoke (tiny grid; report must be bit-identical across runs)"
LOADTEST_DIR_A="$(mktemp -d)"
LOADTEST_DIR_B="$(mktemp -d)"
trap 'rm -rf "$PIPELINE_RUN_DIR" "$LOADTEST_DIR_A" "$LOADTEST_DIR_B"' EXIT
python -m repro loadtest --config examples/loadtest_smoke.json \
    --output-dir "$LOADTEST_DIR_A" --quiet
python -m repro loadtest --config examples/loadtest_smoke.json \
    --output-dir "$LOADTEST_DIR_B" --quiet
for artifact in loadtest_report.json loadtest_report.md \
        trace_bursty.jsonl trace_flash_crowd.jsonl; do
    test -f "$LOADTEST_DIR_A/$artifact" \
        || { echo "missing loadtest artifact: $artifact"; exit 1; }
done
diff -r "$LOADTEST_DIR_A" "$LOADTEST_DIR_B" \
    || { echo "loadtest run is not deterministic"; exit 1; }
grep -q '"energy_per_request_pj"' "$LOADTEST_DIR_A/loadtest_report.json" \
    || { echo "loadtest report lacks the energy-per-request column"; exit 1; }

echo "==> obs diff gate (identical smoke runs must diff clean)"
python -m repro obs diff "$LOADTEST_DIR_A" "$LOADTEST_DIR_B" \
    || { echo "obs diff flagged a regression between identical runs"; exit 1; }

echo "==> obs smoke (tracing must not change the deterministic report)"
OBS_DIR="$(mktemp -d)"
trap 'rm -rf "$PIPELINE_RUN_DIR" "$LOADTEST_DIR_A" "$LOADTEST_DIR_B" "$OBS_DIR"' EXIT
python -m repro loadtest --config examples/loadtest_smoke.json \
    --output-dir "$OBS_DIR" --obs --quiet
cmp "$LOADTEST_DIR_A/loadtest_report.json" "$OBS_DIR/loadtest_report.json" \
    || { echo "traced loadtest report differs from untraced run"; exit 1; }
for artifact in obs/trace_events.jsonl obs/metrics.prom obs/metrics.jsonl; do
    test -f "$OBS_DIR/$artifact" \
        || { echo "missing obs artifact: $artifact"; exit 1; }
done
python -m repro obs "$OBS_DIR" > /dev/null \
    || { echo "repro obs failed to render the traced run dir"; exit 1; }
python -m repro obs "$OBS_DIR" --profile > /dev/null \
    || { echo "repro obs --profile failed on the traced run dir"; exit 1; }

echo "==> SLO gate (an injected unmeetable SLO must fail the check)"
if python -m repro slo check "$OBS_DIR" --latency-target-s 0.000000001 \
        --quiet; then
    echo "repro slo check passed an unmeetable 1 ns latency target"
    exit 1
fi

echo "==> real-plane pytest (spawned worker pool + gateway, marker-gated)"
python -m pytest -q -m real_plane

echo "==> serve-real smoke (real gateway + workers validated vs the simulator)"
SERVE_REAL_DIR="$(mktemp -d)"
trap 'rm -rf "$PIPELINE_RUN_DIR" "$LOADTEST_DIR_A" "$LOADTEST_DIR_B" "$OBS_DIR" "$SERVE_REAL_DIR"' EXIT
# One worker concentrates the burst so the policies separate and the
# --strict ordering + occupancy comparison against the simulator is
# non-vacuous; 96 requests keep the replay to seconds.
python -m repro serve-real --scenario bursty --policy all --workers 1 \
    --max-requests 96 --seed 0 --compare --strict \
    --output-dir "$SERVE_REAL_DIR"
for artifact in serve_real_report.json sim_vs_real.json trace.jsonl \
        metrics_scrape.prom obs/trace_events.jsonl obs/metrics.prom; do
    test -f "$SERVE_REAL_DIR/$artifact" \
        || { echo "missing serve-real artifact: $artifact"; exit 1; }
done
python - "$SERVE_REAL_DIR" <<'PY'
import json, sys
run_dir = sys.argv[1]
with open(f"{run_dir}/serve_real_report.json") as handle:
    payload = json.load(handle)
assert payload["plane"] == "real", payload.get("plane")
reports = payload["reports"]
assert len(reports) == 3, f"expected 3 policy reports, got {len(reports)}"
for report in reports:
    for key in ("policy", "num_requests", "latency_p50_s", "latency_p95_s",
                "latency_p99_s", "occupancy", "per_replica", "slo_s"):
        assert key in report, f"report lacks {key!r}"
    assert report["num_requests"] == 96, report["num_requests"]
for summary in payload["replay"]:
    assert summary["drained"], f"{summary['policy']} did not drain"
    assert summary["failed"] == [], summary["failed"]
with open(f"{run_dir}/sim_vs_real.json") as handle:
    assert json.load(handle)["verdict"]["ok"]
print("serve-real report schema + verdict ok")
PY
grep -Eq 'repro_requests_completed_total\{[^}]*\} [1-9]' \
        "$SERVE_REAL_DIR/metrics_scrape.prom" \
    || { echo "live /metrics scrape has no completed requests"; exit 1; }
grep -Eq 'repro_gateway_http_requests_total\{[^}]*code="200"[^}]*\} [1-9]' \
        "$SERVE_REAL_DIR/metrics_scrape.prom" \
    || { echo "live /metrics scrape has no gateway 200s"; exit 1; }
python -m repro obs "$SERVE_REAL_DIR" > /dev/null \
    || { echo "repro obs failed to render the serve-real run dir"; exit 1; }

echo "==> perf bench smoke (gated on benchmarks/perf/baseline.json)"
python -m repro bench --scale smoke

echo "==> CI gate passed"
